//! Peer liveness: unresponsiveness timeouts, a suspect→evict state
//! machine, and capped exponential reconnect backoff.
//!
//! Perigee's scoring already punishes *slow* peers; what it lacks is a
//! story for peers that stop responding entirely — a crashed node behind
//! a flapping link, the far side of a partition, a stale address-book
//! entry. The [`LivenessTracker`] watches each node's outgoing neighbors
//! round over round: a neighbor that delivered nothing in a round where
//! the node itself saw blocks is *silent*; after
//! [`LivenessConfig::suspect_after`] consecutive silent rounds it becomes
//! a suspect, and after [`LivenessConfig::evict_after`] the connection is
//! force-dropped in the engine's disconnect phase (counted in
//! [`RoundStats::evicted`](crate::RoundStats)). Evicted and
//! connect-failed addresses go under capped exponential backoff so the
//! refill phase — and joiners bootstrapping through the
//! [`AddressBook`](crate::AddressBook) — don't hammer dead addresses;
//! once the backoff expires the peer becomes a normal candidate again,
//! which is what lets a healed partition re-knit.
//!
//! Everything here is deterministic: state advances only from the
//! engine's per-round observations (no clocks, no RNG), so runs with the
//! tracker enabled stay bit-identical across thread counts.

use serde::{Deserialize, Serialize};

use perigee_netsim::NodeId;

/// Configuration of the peer-liveness layer. Disabled by default —
/// enable it per run via [`PerigeeConfig::liveness`](crate::PerigeeConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LivenessConfig {
    /// Master switch; when `false` the tracker is never consulted and
    /// the engine behaves exactly as without the layer.
    pub enabled: bool,
    /// Consecutive silent rounds before a neighbor becomes a suspect.
    pub suspect_after: u32,
    /// Consecutive silent rounds before the connection is force-dropped
    /// (must be `>= suspect_after`).
    pub evict_after: u32,
    /// Backoff after the first eviction/failed connect, in rounds.
    pub backoff_base: u32,
    /// Backoff cap, in rounds (the exponential doubling stops here).
    pub backoff_max: u32,
}

impl LivenessConfig {
    /// The layer switched off.
    pub const fn disabled() -> Self {
        LivenessConfig {
            enabled: false,
            suspect_after: 2,
            evict_after: 4,
            backoff_base: 2,
            backoff_max: 32,
        }
    }

    /// A reasonable enabled default: suspect after 2 silent rounds,
    /// evict after 4, retry under backoff 2 → 4 → 8 → … capped at 32
    /// rounds.
    pub const fn aggressive() -> Self {
        LivenessConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.enabled {
            return Ok(());
        }
        if self.suspect_after == 0 {
            return Err("liveness suspect_after must be positive");
        }
        if self.evict_after < self.suspect_after {
            return Err("liveness evict_after must be >= suspect_after");
        }
        if self.backoff_base == 0 {
            return Err("liveness backoff_base must be positive");
        }
        if self.backoff_max < self.backoff_base {
            return Err("liveness backoff_max must be >= backoff_base");
        }
        Ok(())
    }
}

impl Default for LivenessConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Liveness verdict for one outgoing connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Delivering normally (or not yet silent long enough to suspect).
    Healthy,
    /// Silent for `suspect_after..evict_after` consecutive rounds.
    Suspect,
    /// Silent for `evict_after`+ rounds: the engine must drop it.
    Evict,
}

/// Per-(node, peer) reconnect backoff record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Backoff {
    peer: u32,
    /// First round the peer may be retried.
    until_round: u64,
    /// How many times this peer has been backed off (drives doubling).
    attempts: u32,
}

/// Tracks per-outgoing-neighbor silence and reconnect backoff for every
/// node. All state is keyed by stable [`NodeId`]s and updated in id
/// order, so the tracker is deterministic by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LivenessTracker {
    /// `silent[v]`: (peer, consecutive silent rounds) per outgoing
    /// neighbor of `v`, sorted by peer id. Rebuilt incrementally: entries
    /// for dropped neighbors are pruned on observation.
    silent: Vec<Vec<(u32, u32)>>,
    /// `backoff[v]`: active reconnect backoffs, sorted by peer id.
    backoff: Vec<Vec<Backoff>>,
}

impl LivenessTracker {
    /// A tracker for `n` nodes.
    pub fn new(n: usize) -> Self {
        LivenessTracker {
            silent: vec![Vec::new(); n],
            backoff: vec![Vec::new(); n],
        }
    }

    /// Number of tracked node slots.
    pub fn len(&self) -> usize {
        self.silent.len()
    }

    /// Returns `true` if the tracker covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.silent.is_empty()
    }

    /// Grows the tracker to cover `n` node slots (churn arrivals).
    pub fn grow_to(&mut self, n: usize) {
        if n > self.silent.len() {
            self.silent.resize(n, Vec::new());
            self.backoff.resize(n, Vec::new());
        }
    }

    /// Forgets all state held *by* node `v` (churn departure or reset),
    /// and its silence counters held by others against `v` — a departed
    /// id never returns, and a reset node starts over.
    pub fn retire(&mut self, v: NodeId) {
        let vi = v.index();
        if vi < self.silent.len() {
            self.silent[vi].clear();
            self.backoff[vi].clear();
        }
        let id = v.as_u32();
        for s in &mut self.silent {
            s.retain(|&(peer, _)| peer != id);
        }
    }

    /// Applies a free-list compaction plan: dead slots are dropped and
    /// every surviving record's peer id is renumbered. Silence counters
    /// never reference dead peers ([`LivenessTracker::retire`] prunes
    /// them eagerly), but backoff records may — `retire` leaves those to
    /// expire on their own — so unmappable backoff entries are dropped
    /// here. The remap is monotone on live ids, so both per-slot lists
    /// stay sorted by peer without re-sorting.
    pub fn compact(&mut self, plan: &perigee_netsim::IdRemap) {
        assert_eq!(
            plan.old_len(),
            self.silent.len(),
            "compaction plan covers a different world size"
        );
        let mut i = 0u32;
        self.silent.retain(|_| {
            let keep = plan.new_id(NodeId::new(i)).is_some();
            i += 1;
            keep
        });
        let mut i = 0u32;
        self.backoff.retain(|_| {
            let keep = plan.new_id(NodeId::new(i)).is_some();
            i += 1;
            keep
        });
        for s in &mut self.silent {
            for (peer, _) in s.iter_mut() {
                // Live-to-live references only: retire() pruned the rest.
                *peer = plan.remap(NodeId::new(*peer)).as_u32();
            }
        }
        for b in &mut self.backoff {
            b.retain_mut(|r| match plan.new_id(NodeId::new(r.peer)) {
                Some(new) => {
                    r.peer = new.as_u32();
                    true
                }
                None => false,
            });
        }
    }

    /// Feeds one round of observations for node `v`: `outgoing` is its
    /// current outgoing-neighbor list and `delivered(u)` reports whether
    /// peer `u` delivered anything to `v` this round. Counters only
    /// advance when `saw_blocks` is true — a node that saw nothing at all
    /// cannot distinguish a dead peer from its own disconnection, so the
    /// round is uninformative (this is also what keeps the layer from
    /// evicting everyone during a global outage). Returns the verdict per
    /// outgoing peer, aligned with `outgoing`.
    pub fn observe(
        &mut self,
        config: &LivenessConfig,
        v: NodeId,
        outgoing: &[NodeId],
        saw_blocks: bool,
        mut delivered: impl FnMut(NodeId) -> bool,
        verdicts: &mut Vec<PeerHealth>,
    ) {
        verdicts.clear();
        let slot = &mut self.silent[v.index()];
        if !saw_blocks {
            // Uninformative round: keep counters, report current state.
            for &u in outgoing {
                let c = slot
                    .iter()
                    .find(|&&(peer, _)| peer == u.as_u32())
                    .map_or(0, |&(_, c)| c);
                verdicts.push(Self::verdict(config, c));
            }
            return;
        }
        let mut next: Vec<(u32, u32)> = Vec::with_capacity(outgoing.len());
        for &u in outgoing {
            let prev = slot
                .iter()
                .find(|&&(peer, _)| peer == u.as_u32())
                .map_or(0, |&(_, c)| c);
            let c = if delivered(u) { 0 } else { prev + 1 };
            next.push((u.as_u32(), c));
            verdicts.push(Self::verdict(config, c));
        }
        *slot = next;
    }

    #[inline]
    fn verdict(config: &LivenessConfig, consecutive_silent: u32) -> PeerHealth {
        if consecutive_silent >= config.evict_after {
            PeerHealth::Evict
        } else if consecutive_silent >= config.suspect_after {
            PeerHealth::Suspect
        } else {
            PeerHealth::Healthy
        }
    }

    /// Puts `peer` under (or deeper into) backoff for node `v` starting
    /// from `round`: the retry delay doubles per recorded failure, capped
    /// at [`LivenessConfig::backoff_max`].
    pub fn note_failure(&mut self, config: &LivenessConfig, v: NodeId, peer: NodeId, round: u64) {
        let slot = &mut self.backoff[v.index()];
        let id = peer.as_u32();
        match slot.iter_mut().find(|b| b.peer == id) {
            Some(b) => {
                b.attempts = b.attempts.saturating_add(1);
                let delay = config
                    .backoff_base
                    .saturating_mul(1u32.checked_shl(b.attempts.min(16)).unwrap_or(u32::MAX))
                    .min(config.backoff_max);
                b.until_round = round + u64::from(delay);
            }
            None => {
                let insert_at = slot.partition_point(|b| b.peer < id);
                slot.insert(
                    insert_at,
                    Backoff {
                        peer: id,
                        until_round: round + u64::from(config.backoff_base.min(config.backoff_max)),
                        attempts: 0,
                    },
                );
            }
        }
    }

    /// Clears any backoff `v` holds against `peer` (successful connect
    /// with deliveries, or the peer departed).
    pub fn note_success(&mut self, v: NodeId, peer: NodeId) {
        let id = peer.as_u32();
        self.backoff[v.index()].retain(|b| b.peer != id);
    }

    /// Is `peer` currently under backoff for node `v` at `round`?
    #[inline]
    pub fn backed_off(&self, v: NodeId, peer: NodeId, round: u64) -> bool {
        let id = peer.as_u32();
        self.backoff[v.index()]
            .iter()
            .any(|b| b.peer == id && round < b.until_round)
    }

    /// Number of active backoff records across all nodes at `round`.
    pub fn active_backoffs(&self, round: u64) -> usize {
        self.backoff
            .iter()
            .map(|s| s.iter().filter(|b| round < b.until_round).count())
            .sum()
    }

    /// How many silence-counter slots across the whole tracker currently
    /// reference `peer` — zero after the peer departs, or the
    /// [`LivenessTracker::retire`] path leaked a slot.
    pub fn counters_tracking(&self, peer: NodeId) -> usize {
        let id = peer.as_u32();
        self.silent
            .iter()
            .map(|s| s.iter().filter(|&&(p, _)| p == id).count())
            .sum()
    }

    /// Release-mode legality check of the tracker's state machine,
    /// reporting violations into `out` (see [`crate::audit`]):
    /// counter/backoff lists must be sorted and duplicate-free, reference
    /// only in-range non-self peers, and no silence counter may exceed
    /// [`LivenessConfig::evict_after`] — a larger value means a peer the
    /// engine should have evicted is still being counted.
    pub(crate) fn audit(
        &self,
        config: &LivenessConfig,
        out: &mut Vec<crate::audit::AuditViolation>,
    ) {
        use crate::audit::{AuditCheck, AuditViolation};
        let n = self.silent.len() as u32;
        let mut push = |detail: String| {
            out.push(AuditViolation::new(
                AuditCheck::LivenessStateMachine,
                detail,
            ));
        };
        for (vi, slot) in self.silent.iter().enumerate() {
            for win in slot.windows(2) {
                if win[0].0 >= win[1].0 {
                    push(format!("n{vi}: silence counters unsorted or duplicated"));
                    break;
                }
            }
            for &(peer, count) in slot {
                if peer >= n || peer == vi as u32 {
                    push(format!(
                        "n{vi}: silence counter references invalid peer n{peer}"
                    ));
                }
                if config.enabled && count > config.evict_after {
                    push(format!(
                        "n{vi}: peer n{peer} silent {count} rounds, past evict_after {}",
                        config.evict_after
                    ));
                }
            }
        }
        for (vi, slot) in self.backoff.iter().enumerate() {
            for win in slot.windows(2) {
                if win[0].peer >= win[1].peer {
                    push(format!("n{vi}: backoff records unsorted or duplicated"));
                    break;
                }
            }
            for b in slot {
                if b.peer >= n || b.peer == vi as u32 {
                    push(format!(
                        "n{vi}: backoff record references invalid peer n{}",
                        b.peer
                    ));
                }
            }
        }
    }
}

mod codec {
    //! Checkpoint codec impls (see `serde::bin`): the tracker's silence
    //! counters and backoff timers are exactly what must survive a
    //! restart — a resumed node that forgot a suspect would re-trust a
    //! dead peer for `suspect_after` extra rounds.

    use serde::bin::{Decode, DecodeError, Encode, Reader};

    use super::{Backoff, LivenessConfig, LivenessTracker};

    impl Encode for LivenessConfig {
        fn encode(&self, out: &mut Vec<u8>) {
            self.enabled.encode(out);
            self.suspect_after.encode(out);
            self.evict_after.encode(out);
            self.backoff_base.encode(out);
            self.backoff_max.encode(out);
        }
    }

    impl Decode for LivenessConfig {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let config = LivenessConfig {
                enabled: bool::decode(r)?,
                suspect_after: u32::decode(r)?,
                evict_after: u32::decode(r)?,
                backoff_base: u32::decode(r)?,
                backoff_max: u32::decode(r)?,
            };
            config
                .validate()
                .map_err(|_| DecodeError::new("liveness config fails validation"))?;
            Ok(config)
        }
    }

    impl Encode for Backoff {
        fn encode(&self, out: &mut Vec<u8>) {
            self.peer.encode(out);
            self.until_round.encode(out);
            self.attempts.encode(out);
        }
    }

    impl Decode for Backoff {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(Backoff {
                peer: u32::decode(r)?,
                until_round: u64::decode(r)?,
                attempts: u32::decode(r)?,
            })
        }
    }

    impl Encode for LivenessTracker {
        fn encode(&self, out: &mut Vec<u8>) {
            self.silent.encode(out);
            self.backoff.encode(out);
        }
    }

    impl Decode for LivenessTracker {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let tracker = LivenessTracker {
                silent: Vec::decode(r)?,
                backoff: Vec::decode(r)?,
            };
            if tracker.backoff.len() != tracker.silent.len() {
                return Err(DecodeError::new("liveness tracker slot counts disagree"));
            }
            Ok(tracker)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LivenessConfig {
        LivenessConfig::aggressive()
    }

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().map(|&x| NodeId::new(x)).collect()
    }

    #[test]
    fn silence_escalates_healthy_suspect_evict_and_resets_on_delivery() {
        let c = cfg();
        let mut t = LivenessTracker::new(4);
        let v = NodeId::new(0);
        let out = ids(&[1, 2]);
        let mut verdicts = Vec::new();
        // Peer 1 delivers every round, peer 2 never does.
        for round in 0..4 {
            t.observe(&c, v, &out, true, |u| u.as_u32() == 1, &mut verdicts);
            let expected = match round {
                0 => PeerHealth::Healthy, // 1 silent round
                1 => PeerHealth::Suspect, // 2
                2 => PeerHealth::Suspect, // 3
                _ => PeerHealth::Evict,   // 4 = evict_after
            };
            assert_eq!(
                verdicts,
                vec![PeerHealth::Healthy, expected],
                "round {round}"
            );
        }
        // One delivery wipes the record.
        t.observe(&c, v, &out, true, |_| true, &mut verdicts);
        assert_eq!(verdicts, vec![PeerHealth::Healthy; 2]);
        t.observe(&c, v, &out, true, |u| u.as_u32() == 1, &mut verdicts);
        assert_eq!(
            verdicts,
            vec![PeerHealth::Healthy; 2],
            "counter must restart"
        );
    }

    #[test]
    fn uninformative_rounds_freeze_counters() {
        let c = cfg();
        let mut t = LivenessTracker::new(3);
        let v = NodeId::new(0);
        let out = ids(&[1]);
        let mut verdicts = Vec::new();
        t.observe(&c, v, &out, true, |_| false, &mut verdicts);
        // Many rounds where v itself saw nothing: no escalation.
        for _ in 0..10 {
            t.observe(&c, v, &out, false, |_| false, &mut verdicts);
            assert_eq!(verdicts, vec![PeerHealth::Healthy]);
        }
        t.observe(&c, v, &out, true, |_| false, &mut verdicts);
        assert_eq!(verdicts, vec![PeerHealth::Suspect], "2nd informative round");
    }

    #[test]
    fn backoff_doubles_and_caps_and_clears() {
        let c = cfg();
        let mut t = LivenessTracker::new(2);
        let (v, p) = (NodeId::new(0), NodeId::new(1));
        t.note_failure(&c, v, p, 10);
        assert!(t.backed_off(v, p, 10));
        assert!(t.backed_off(v, p, 11));
        assert!(!t.backed_off(v, p, 12), "base backoff is 2 rounds");
        t.note_failure(&c, v, p, 12); // attempt 1 → 4 rounds
        assert!(t.backed_off(v, p, 15));
        assert!(!t.backed_off(v, p, 16));
        for round in [16u64, 17, 18, 19, 20] {
            t.note_failure(&c, v, p, round);
        }
        // Deep failure history: delay is capped at backoff_max.
        assert!(t.backed_off(v, p, 20 + u64::from(c.backoff_max) - 1));
        assert!(!t.backed_off(v, p, 20 + u64::from(c.backoff_max)));
        t.note_success(v, p);
        assert!(!t.backed_off(v, p, 21));
        assert_eq!(t.active_backoffs(21), 0);
    }

    #[test]
    fn retire_forgets_both_directions() {
        let c = cfg();
        let mut t = LivenessTracker::new(3);
        let mut verdicts = Vec::new();
        // 0 suspects 1; 1 suspects 2; 0 backs off 2.
        for _ in 0..2 {
            t.observe(
                &c,
                NodeId::new(0),
                &ids(&[1]),
                true,
                |_| false,
                &mut verdicts,
            );
            t.observe(
                &c,
                NodeId::new(1),
                &ids(&[2]),
                true,
                |_| false,
                &mut verdicts,
            );
        }
        t.note_failure(&c, NodeId::new(0), NodeId::new(2), 0);
        t.retire(NodeId::new(1));
        // 1's own state is gone and 0's counters against 1 are gone.
        t.observe(
            &c,
            NodeId::new(0),
            &ids(&[1]),
            true,
            |_| false,
            &mut verdicts,
        );
        assert_eq!(verdicts, vec![PeerHealth::Healthy]);
        t.observe(
            &c,
            NodeId::new(1),
            &ids(&[2]),
            true,
            |_| false,
            &mut verdicts,
        );
        assert_eq!(verdicts, vec![PeerHealth::Healthy]);
        // Unrelated backoff survives.
        assert!(t.backed_off(NodeId::new(0), NodeId::new(2), 1));
    }

    #[test]
    fn grow_to_extends_without_touching_existing_state() {
        let c = cfg();
        let mut t = LivenessTracker::new(2);
        let mut verdicts = Vec::new();
        for _ in 0..2 {
            t.observe(
                &c,
                NodeId::new(0),
                &ids(&[1]),
                true,
                |_| false,
                &mut verdicts,
            );
        }
        t.grow_to(5);
        assert_eq!(t.len(), 5);
        t.observe(
            &c,
            NodeId::new(0),
            &ids(&[1]),
            true,
            |_| false,
            &mut verdicts,
        );
        assert_eq!(verdicts, vec![PeerHealth::Suspect]);
        t.observe(
            &c,
            NodeId::new(4),
            &ids(&[0]),
            true,
            |_| false,
            &mut verdicts,
        );
        assert_eq!(verdicts, vec![PeerHealth::Healthy]);
    }

    #[test]
    fn validation() {
        assert!(LivenessConfig::disabled().validate().is_ok());
        assert!(LivenessConfig::aggressive().validate().is_ok());
        let bad = LivenessConfig {
            evict_after: 1,
            suspect_after: 2,
            enabled: true,
            ..LivenessConfig::disabled()
        };
        assert!(bad.validate().is_err());
        let bad = LivenessConfig {
            backoff_base: 0,
            enabled: true,
            ..LivenessConfig::disabled()
        };
        assert!(bad.validate().is_err());
        // A disabled config is never validated further.
        let off = LivenessConfig {
            suspect_after: 0,
            ..LivenessConfig::disabled()
        };
        assert!(off.validate().is_ok());
    }

    #[test]
    fn churn_departure_of_suspect_leaks_no_counter_slot() {
        let c = cfg();
        let mut t = LivenessTracker::new(4);
        let v = NodeId::new(0);
        let suspect = NodeId::new(2);
        let mut verdicts = Vec::new();
        // Drive peer 2 into Suspect from two different watchers.
        for _ in 0..2 {
            t.observe(
                &c,
                v,
                &ids(&[1, 2]),
                true,
                |u| u.as_u32() == 1,
                &mut verdicts,
            );
            t.observe(
                &c,
                NodeId::new(3),
                &ids(&[2]),
                true,
                |_| false,
                &mut verdicts,
            );
        }
        assert_eq!(verdicts, vec![PeerHealth::Suspect]);
        assert_eq!(t.counters_tracking(suspect), 2);
        // Peer 2 departs via churn while suspected.
        t.retire(suspect);
        assert_eq!(
            t.counters_tracking(suspect),
            0,
            "departed suspect must not leak counter slots"
        );
        // If the id is later reused by a joiner, it starts Healthy with a
        // fresh counter — no inherited suspicion.
        t.observe(
            &c,
            v,
            &ids(&[1, 2]),
            true,
            |u| u.as_u32() == 1,
            &mut verdicts,
        );
        assert_eq!(verdicts, vec![PeerHealth::Healthy, PeerHealth::Healthy]);
        let mut violations = Vec::new();
        t.audit(&c, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn backoff_at_cap_stays_capped_and_rearms_at_base_after_heal() {
        let c = cfg();
        let mut t = LivenessTracker::new(2);
        let (v, p) = (NodeId::new(0), NodeId::new(1));
        // Fail far past the doubling range: delay must pin at backoff_max.
        let mut round = 0u64;
        for _ in 0..40 {
            t.note_failure(&c, v, p, round);
            round += 1;
        }
        let last = round - 1;
        assert!(t.backed_off(v, p, last + u64::from(c.backoff_max) - 1));
        assert!(
            !t.backed_off(v, p, last + u64::from(c.backoff_max)),
            "delay must stay exactly at the cap, not overflow past it"
        );
        // A successful reconnect heals the record entirely...
        t.note_success(v, p);
        assert!(!t.backed_off(v, p, last));
        // ...so the next failure re-arms at the base delay, not the cap.
        t.note_failure(&c, v, p, 1_000);
        assert!(t.backed_off(v, p, 1_000 + u64::from(c.backoff_base) - 1));
        assert!(
            !t.backed_off(v, p, 1_000 + u64::from(c.backoff_base)),
            "healed peer must restart the exponential at backoff_base"
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_counters_and_backoffs() {
        use serde::bin::{Decode, Encode};
        let c = cfg();
        let mut t = LivenessTracker::new(3);
        let mut verdicts = Vec::new();
        for _ in 0..2 {
            t.observe(
                &c,
                NodeId::new(0),
                &ids(&[1, 2]),
                true,
                |u| u.as_u32() == 1,
                &mut verdicts,
            );
        }
        t.note_failure(&c, NodeId::new(1), NodeId::new(2), 7);
        let bytes = t.to_bytes();
        let back = LivenessTracker::from_bytes(&bytes).expect("round-trip");
        assert_eq!(back.len(), t.len());
        assert_eq!(back.counters_tracking(NodeId::new(2)), 1);
        assert!(back.backed_off(NodeId::new(1), NodeId::new(2), 7));
        // Restored tracker continues identically.
        let mut v1 = Vec::new();
        let mut v2 = Vec::new();
        let mut t2 = back;
        t.observe(&c, NodeId::new(0), &ids(&[1, 2]), true, |_| false, &mut v1);
        t2.observe(&c, NodeId::new(0), &ids(&[1, 2]), true, |_| false, &mut v2);
        assert_eq!(v1, v2);
        // Corruption (slot-count mismatch) is a structured error.
        let mut tampered = Vec::new();
        t.silent.encode(&mut tampered);
        Vec::<Vec<Backoff>>::new().encode(&mut tampered);
        assert!(LivenessTracker::from_bytes(&tampered).is_err());
    }

    #[test]
    fn audit_flags_illegal_states() {
        let c = cfg();
        let mut t = LivenessTracker::new(2);
        // A counter past evict_after means a peer the engine failed to
        // evict; an out-of-range peer id means corrupted state.
        t.silent[0].push((1, c.evict_after + 3));
        t.silent[1].push((9, 1));
        let mut violations = Vec::new();
        t.audit(&c, &mut violations);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations
            .iter()
            .all(|v| { v.check == crate::audit::AuditCheck::LivenessStateMachine }));
    }
}
