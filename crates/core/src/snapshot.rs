//! Deterministic checkpoint/resume: the versioned, self-describing
//! [`RunSnapshot`] of a long-running world.
//!
//! A snapshot captures *complete* cross-round run state — everything the
//! determinism contract depends on: the engine configuration and round
//! counter, the [`Population`] (free-list, stable ids, hash power), the
//! learned [`Topology`], the strategy's cross-round score state (UCB's
//! per-connection histories) as opaque bytes via
//! [`SelectionStrategy::snapshot_state`](crate::SelectionStrategy::snapshot_state),
//! the [`AddressBook`], the [`LivenessTracker`]'s counters and backoff
//! timers, the [`ChurnProcess`]'s RNG and session queue, the
//! [`FaultPlan`] (pure config — its per-block draws are keyed on the
//! checkpointed global block counter), the latency model, and the run
//! RNG's raw state. What is *not* serialized is derived state rebuilt on
//! resume: the CSR snapshot (`TopologyView`) and the miner sampler, both
//! pure functions of the state above — the patched-equals-fresh
//! invariant guarantees the rebuilt view is bit-identical to the one the
//! checkpointed run was carrying.
//!
//! # On-disk format
//!
//! Little-endian, length-prefixed (`serde::bin`), wrapped in a
//! self-describing envelope:
//!
//! ```text
//! magic "PRGS" | format_version u32 | body length u64 | body | fnv1a64(body) u64
//! ```
//!
//! [`RunSnapshot::from_bytes`] verifies magic, version and content hash
//! before touching the body, and every decoder validates its structural
//! invariants, so a truncated or bit-flipped file yields a structured
//! [`SnapshotError`] instead of garbage state. Resuming at round *k* and
//! running to *N* is bit-identical to an uninterrupted *N*-round run —
//! across thread counts, queue kinds, churn and active fault plans (the
//! `resume` integration suite is the enforcement).
//!
//! [`ChurnProcess`]: perigee_netsim::ChurnProcess
//! [`FaultPlan`]: perigee_netsim::FaultPlan
//! [`LivenessTracker`]: crate::LivenessTracker
//! [`AddressBook`]: crate::AddressBook

use std::fmt;

use serde::bin::{fnv1a64, Decode, DecodeError, Encode, Reader};

use perigee_netsim::{
    ChurnProcess, FaultPlan, Population, QueueKind, Topology, TrafficConfig, WorldDelta,
};

use crate::config::PerigeeConfig;
use crate::discovery::AddressBook;
use crate::engine::PropagationMode;
use crate::liveness::LivenessTracker;
use crate::score::ScoringMethod;

/// The envelope magic: "PRGS" (PeRiGee Snapshot).
const MAGIC: [u8; 4] = *b"PRGS";

/// Format version this build writes and the only one it reads. Bump on
/// any change to the body layout.
///
/// History: **1** — the original inventory; **2** — adds the free-list
/// compaction epoch ([`RunSnapshot::compaction_epoch`]) and the latency
/// placement keys that make compaction delay-preserving (the
/// [`GeoLatencyModel`](perigee_netsim::GeoLatencyModel) codec grew two
/// fields); **3** — adds the continuous-traffic workload (an optional
/// [`TrafficConfig`] after the fault plan): traffic origination is a
/// pure hash of `(seed, round, class, node)`, so the config alone lets
/// a resumed run regenerate the identical message stream. Older
/// envelopes are rejected with [`SnapshotError::UnsupportedVersion`] —
/// re-run the capture, don't guess at a world whose id space may have
/// been renumbered.
pub const FORMAT_VERSION: u32 = 3;

/// Why a snapshot could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The body's content hash does not match — bit rot or truncation.
    HashMismatch,
    /// The envelope was sound but a field failed structural validation.
    Corrupt(DecodeError),
    /// The snapshot disagrees with itself (e.g. a liveness tracker for a
    /// config that disables the layer).
    Inconsistent(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a perigee snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::HashMismatch => write!(f, "snapshot content hash mismatch"),
            SnapshotError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
            SnapshotError::Inconsistent(why) => write!(f, "inconsistent snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Corrupt(e)
    }
}

/// Complete cross-round state of a [`PerigeeEngine`](crate::PerigeeEngine)
/// run, as captured by [`PerigeeEngine::checkpoint`](crate::PerigeeEngine::checkpoint)
/// and consumed by [`PerigeeEngine::resume`](crate::PerigeeEngine::resume).
///
/// The latency model travels as an opaque inner encoding
/// (`latency_bytes`) so the snapshot type itself stays non-generic; the
/// engine's `resume` decodes it back to the concrete model type.
#[derive(Debug, Clone)]
pub struct RunSnapshot {
    pub(crate) round: u64,
    pub(crate) blocks_simulated: u64,
    pub(crate) compaction_epoch: u64,
    pub(crate) config: PerigeeConfig,
    pub(crate) method: ScoringMethod,
    pub(crate) queue: QueueKind,
    pub(crate) parallel: bool,
    pub(crate) mode: PropagationMode,
    pub(crate) adopters: Vec<bool>,
    pub(crate) strategy_state: Vec<u8>,
    pub(crate) population: Population,
    pub(crate) topology: Topology,
    pub(crate) address_book: Option<AddressBook>,
    pub(crate) liveness: Option<LivenessTracker>,
    pub(crate) churn: Option<ChurnProcess>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) traffic: Option<TrafficConfig>,
    pub(crate) last_delta: WorldDelta,
    pub(crate) latency_bytes: Vec<u8>,
    pub(crate) rng_state: [u64; 4],
}

impl RunSnapshot {
    /// The round counter at capture time — resuming continues from here.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The run-global block counter at capture time.
    pub fn blocks_simulated(&self) -> u64 {
        self.blocks_simulated
    }

    /// How many free-list compactions the captured run had performed
    /// (see [`PerigeeEngine::compact`](crate::PerigeeEngine::compact)).
    /// Ids name different nodes across epochs, so this is part of the
    /// world's identity.
    pub fn compaction_epoch(&self) -> u64 {
        self.compaction_epoch
    }

    /// The captured engine configuration.
    pub fn config(&self) -> &PerigeeConfig {
        &self.config
    }

    /// The captured scoring method.
    pub fn method(&self) -> ScoringMethod {
        self.method
    }

    /// Number of node slots (alive + retired) in the captured world.
    pub fn node_count(&self) -> usize {
        self.population.len()
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.blocks_simulated.encode(out);
        self.compaction_epoch.encode(out);
        self.config.encode(out);
        self.method.encode(out);
        self.queue.encode(out);
        self.parallel.encode(out);
        self.mode.encode(out);
        self.adopters.encode(out);
        self.strategy_state.encode(out);
        self.population.encode(out);
        self.topology.encode(out);
        self.address_book.encode(out);
        self.liveness.encode(out);
        self.churn.encode(out);
        self.fault_plan.encode(out);
        self.traffic.encode(out);
        self.last_delta.encode(out);
        self.latency_bytes.encode(out);
        self.rng_state.encode(out);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let snapshot = RunSnapshot {
            round: u64::decode(r)?,
            blocks_simulated: u64::decode(r)?,
            compaction_epoch: u64::decode(r)?,
            config: Decode::decode(r)?,
            method: Decode::decode(r)?,
            queue: Decode::decode(r)?,
            parallel: bool::decode(r)?,
            mode: Decode::decode(r)?,
            adopters: Vec::decode(r)?,
            strategy_state: Vec::decode(r)?,
            population: Decode::decode(r)?,
            topology: Decode::decode(r)?,
            address_book: Option::decode(r)?,
            liveness: Option::decode(r)?,
            churn: Option::decode(r)?,
            fault_plan: Option::decode(r)?,
            traffic: Option::decode(r)?,
            last_delta: Decode::decode(r)?,
            latency_bytes: Vec::decode(r)?,
            rng_state: <[u64; 4]>::decode(r)?,
        };
        snapshot.check_consistency()?;
        Ok(snapshot)
    }

    /// Cross-field invariants a structurally valid body must still obey.
    fn check_consistency(&self) -> Result<(), SnapshotError> {
        let n = self.population.len();
        if self.topology.len() != n {
            return Err(SnapshotError::Inconsistent(
                "topology and population sizes differ",
            ));
        }
        if self.adopters.len() != n {
            return Err(SnapshotError::Inconsistent(
                "adopter flags do not cover the population",
            ));
        }
        if self.config.liveness.enabled != self.liveness.is_some() {
            return Err(SnapshotError::Inconsistent(
                "liveness state disagrees with the config switch",
            ));
        }
        if let Some(tracker) = &self.liveness {
            if tracker.len() != n {
                return Err(SnapshotError::Inconsistent(
                    "liveness tracker does not cover the population",
                ));
            }
        }
        if let Some(book) = &self.address_book {
            if book.len() != n {
                return Err(SnapshotError::Inconsistent(
                    "address book does not cover the population",
                ));
            }
        }
        if self.rng_state == [0; 4] {
            return Err(SnapshotError::Inconsistent("all-zero run RNG state"));
        }
        if let Some(traffic) = &self.traffic {
            if traffic.validate().is_err() {
                return Err(SnapshotError::Inconsistent(
                    "traffic workload fails validation",
                ));
            }
        }
        Ok(())
    }

    /// Serializes the snapshot into the self-describing on-disk envelope
    /// (magic, format version, length-prefixed body, content hash).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        let mut out = Vec::with_capacity(body.len() + 24);
        out.extend_from_slice(&MAGIC);
        FORMAT_VERSION.encode(&mut out);
        (body.len() as u64).encode(&mut out);
        let hash = fnv1a64(&body);
        out.extend_from_slice(&body);
        hash.encode(&mut out);
        out
    }

    /// Reads a snapshot back, verifying magic, version and content hash
    /// before decoding — and every structural invariant while decoding.
    ///
    /// # Errors
    ///
    /// A structured [`SnapshotError`] naming what is wrong with the file.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4).map_err(|_| SnapshotError::BadMagic)?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::decode(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let body_len = u64::decode(&mut r)? as usize;
        if body_len.saturating_add(8) != r.remaining() {
            return Err(SnapshotError::HashMismatch);
        }
        let body = r.take(body_len).map_err(SnapshotError::Corrupt)?;
        let stored = u64::decode(&mut r)?;
        if stored != fnv1a64(body) {
            return Err(SnapshotError::HashMismatch);
        }
        let mut br = Reader::new(body);
        let snapshot = Self::decode_body(&mut br)?;
        if br.remaining() != 0 {
            return Err(SnapshotError::Corrupt(DecodeError::new(
                "trailing bytes in snapshot body",
            )));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Engine-level round-trip and kill-and-resume determinism live in
    // `crates/core/tests/resume.rs`; here we cover the envelope itself.

    fn tiny_snapshot() -> RunSnapshot {
        use perigee_netsim::{ConnectionLimits, NodeId, NodeProfile};
        let profiles = vec![
            NodeProfile {
                hash_power: 1.0,
                ..NodeProfile::default()
            };
            2
        ];
        let population = Population::from_profiles(profiles).unwrap();
        let mut topology = Topology::new(2, ConnectionLimits::unlimited());
        topology.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        RunSnapshot {
            round: 17,
            blocks_simulated: 1700,
            compaction_epoch: 0,
            config: PerigeeConfig::default(),
            method: ScoringMethod::Subset,
            queue: QueueKind::Calendar,
            parallel: true,
            mode: PropagationMode::Analytic,
            adopters: vec![true, true],
            strategy_state: Vec::new(),
            population,
            topology,
            address_book: None,
            liveness: None,
            churn: None,
            fault_plan: None,
            traffic: None,
            last_delta: WorldDelta::default(),
            latency_bytes: vec![1, 2, 3],
            rng_state: [1, 2, 3, 4],
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let s = tiny_snapshot();
        let bytes = s.to_bytes();
        assert_eq!(&bytes[..4], b"PRGS");
        let back = RunSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "decode∘encode is the identity");
        assert_eq!(back.round(), 17);
        assert_eq!(back.blocks_simulated(), 1700);
        assert_eq!(back.node_count(), 2);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            RunSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            RunSnapshot::from_bytes(&[]).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            RunSnapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn bit_flip_fails_the_content_hash() {
        let mut bytes = tiny_snapshot().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            RunSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::HashMismatch
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = tiny_snapshot().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            assert!(
                RunSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn inconsistent_body_is_rejected_with_structure() {
        let mut s = tiny_snapshot();
        s.adopters = vec![true]; // one flag, two nodes
        let bytes = s.to_bytes();
        assert_eq!(
            RunSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Inconsistent("adopter flags do not cover the population")
        );
    }
}
