//! Combined block + transaction-stream rounds: Perigee under load.
//!
//! The paper's evaluation runs ~one block per round over an otherwise
//! silent network; real relay layers carry orders of magnitude more
//! small-message traffic alongside the blocks. This module drives
//! [`PerigeeEngine`] with a [`TrafficConfig`] workload installed — the
//! engine's combined round mode simulates every round's seeded Poisson
//! message stream in batched announcement passes and merges the
//! per-message observation rows behind the block rows — and answers two
//! questions:
//!
//! * [`run_combined`] — what does the steady-state stream cost? Per
//!   round, the per-class mean λ90/λ50 curves (`tx`, `announce`,
//!   `control` under the paper stream) next to the block λ-curve, with
//!   the sketch observation backend keeping the round's memory flat
//!   while thousands of rows land per round.
//! * [`run_ablation`] — does Perigee still *learn* under combined load?
//!   Two arms from the same seed — blocks-only vs blocks + the full
//!   paper stream — compared on the fault-free median λ90 of the
//!   learned overlay, before and after. The traffic rows feed scoring
//!   too, so the combined arm learns from strictly more evidence; the
//!   claim to check is that the extra load never *stops* the λ90 curve
//!   from improving.
//!
//! Traffic origination is a pure hash of `(seed, round, class, node)`,
//! so both experiments are bit-reproducible per seed — the workload
//! consumes no RNG and leaves the block path's random stream untouched.

use rand::rngs::StdRng;
use rand::SeedableRng;

use perigee_core::{
    ObservationBackend, PerigeeConfig, PerigeeEngine, ScoringMethod, TrafficRoundStats,
};
use perigee_metrics::{percentile_or_inf, Table};
use perigee_netsim::{ConnectionLimits, TrafficConfig};
use perigee_topology::{RandomBuilder, TopologyBuilder};

use crate::runner::{build_world, WorldLatency};
use crate::scenario::Scenario;

/// Builds a Perigee-Subset engine on the scenario world, sketch-backed
/// (a traffic round records thousands of observation rows; the sketch
/// keeps memory O(edges)), with `traffic` installed when given.
fn traffic_engine(
    scenario: &Scenario,
    seed: u64,
    traffic: Option<TrafficConfig>,
) -> (PerigeeEngine<WorldLatency>, StdRng) {
    let world = build_world(scenario, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7AFF1C);
    let topo = RandomBuilder::new().build(
        &world.population,
        &world.latency,
        ConnectionLimits::paper_default(),
        &mut rng,
    );
    let method = ScoringMethod::Subset;
    let mut config = PerigeeConfig::paper_default(method);
    config.blocks_per_round = scenario.blocks_per_round;
    config.observation_backend = ObservationBackend::Sketch;
    let mut engine = PerigeeEngine::new(world.population, world.latency, topo, method, config)
        .expect("valid scenario");
    if let Some(traffic) = traffic {
        engine.set_traffic(traffic).expect("valid workload");
    }
    crate::trace::attach(&mut engine, "traffic", seed);
    (engine, rng)
}

/// The scenario's workload: the paper stream (10.5 expected messages
/// per node per round — ≥10k per round at 1000 nodes).
fn workload(seed: u64) -> TrafficConfig {
    TrafficConfig::paper_stream(seed ^ 0x7F)
}

/// One round of the combined run: the block λ-curve point next to the
/// round's traffic volume and per-class mean λ90 values.
#[derive(Debug, Clone)]
pub struct CombinedRoundPoint {
    /// Round index.
    pub round: usize,
    /// p90 of the round's per-block λ90 (ms).
    pub block_p90_lambda90_ms: f64,
    /// Messages the traffic stream originated this round.
    pub messages: usize,
    /// Mean λ90 (ms) per traffic class, in config order.
    pub class_lambda90_ms: Vec<f64>,
    /// Mean λ50 (ms) per traffic class, in config order.
    pub class_lambda50_ms: Vec<f64>,
}

/// Outcome of [`run_combined`].
#[derive(Debug, Clone)]
pub struct CombinedTrafficResult {
    /// Traffic class names, in config order (the λ-curve columns).
    pub class_names: Vec<String>,
    /// Per-round points, in round order.
    pub per_round: Vec<CombinedRoundPoint>,
    /// Messages simulated across the whole run.
    pub total_messages: usize,
    /// The largest single-round message count.
    pub peak_round_messages: usize,
    /// Fault-free median λ90 of the learned overlay after the run (ms).
    pub final_median90_ms: f64,
    /// Snapshot rebuilds the engine paid (1 = the initial build only).
    pub view_rebuilds: usize,
}

impl CombinedTrafficResult {
    /// Per-round λ-curves: blocks and every traffic class side by side.
    pub fn table(&self) -> Table {
        let mut header = vec![
            "round".to_string(),
            "block p90 λ90 (ms)".to_string(),
            "messages".to_string(),
        ];
        for name in &self.class_names {
            header.push(format!("{name} mean λ90 (ms)"));
            header.push(format!("{name} mean λ50 (ms)"));
        }
        let mut t = Table::new(header);
        for p in &self.per_round {
            let mut row = vec![
                p.round.to_string(),
                format!("{:.1}", p.block_p90_lambda90_ms),
                p.messages.to_string(),
            ];
            for (l90, l50) in p.class_lambda90_ms.iter().zip(&p.class_lambda50_ms) {
                row.push(format!("{l90:.1}"));
                row.push(format!("{l50:.1}"));
            }
            t.row(row);
        }
        t
    }
}

/// Runs the combined mode for the scenario's round budget and traces
/// the per-class λ-curves alongside the block curve.
pub fn run_combined(scenario: &Scenario, seed: u64) -> CombinedTrafficResult {
    let traffic = workload(seed);
    let class_names: Vec<String> = traffic.classes.iter().map(|c| c.name.clone()).collect();
    let (mut engine, mut rng) = traffic_engine(scenario, seed, Some(traffic));
    let mut per_round = Vec::with_capacity(scenario.rounds);
    let mut total_messages = 0;
    let mut peak_round_messages = 0;
    for round in 0..scenario.rounds {
        let stats = engine.run_round(&mut rng);
        let t: &TrafficRoundStats = engine.last_traffic_stats().expect("workload is installed");
        total_messages += t.messages;
        peak_round_messages = peak_round_messages.max(t.messages);
        per_round.push(CombinedRoundPoint {
            round,
            block_p90_lambda90_ms: stats.p90_lambda90_ms,
            messages: t.messages,
            class_lambda90_ms: t.per_class.iter().map(|c| c.mean_lambda90_ms).collect(),
            class_lambda50_ms: t.per_class.iter().map(|c| c.mean_lambda50_ms).collect(),
        });
    }
    engine.topology().assert_invariants();
    CombinedTrafficResult {
        class_names,
        per_round,
        total_messages,
        peak_round_messages,
        final_median90_ms: percentile_or_inf(&engine.evaluate_alive(0.9), 50.0),
        view_rebuilds: engine.view_rebuilds(),
    }
}

/// One arm of the load ablation.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Fault-free median λ90 of the starting (random) overlay (ms).
    pub start_median90_ms: f64,
    /// Fault-free median λ90 of the learned overlay (ms).
    pub final_median90_ms: f64,
    /// Per-round mean block λ90 (ms) — the convergence curve.
    pub per_round_mean90_ms: Vec<f64>,
    /// Messages the arm simulated (0 for the blocks-only arm).
    pub total_messages: usize,
}

impl AblationArm {
    /// Relative improvement of the learned overlay over the random
    /// start: positive means λ90 went down.
    pub fn improvement(&self) -> f64 {
        1.0 - self.final_median90_ms / self.start_median90_ms
    }
}

/// Outcome of [`run_ablation`].
#[derive(Debug, Clone)]
pub struct TrafficAblationResult {
    /// Blocks only — the paper's regime.
    pub blocks_only: AblationArm,
    /// Blocks plus the full paper stream.
    pub combined: AblationArm,
}

impl TrafficAblationResult {
    /// The two convergence curves side by side.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "round".into(),
            "blocks-only mean λ90 (ms)".into(),
            "combined mean λ90 (ms)".into(),
        ]);
        for (i, (a, b)) in self
            .blocks_only
            .per_round_mean90_ms
            .iter()
            .zip(&self.combined.per_round_mean90_ms)
            .enumerate()
        {
            t.row(vec![i.to_string(), format!("{a:.1}"), format!("{b:.1}")]);
        }
        t
    }
}

/// Runs one arm: `rounds` rounds, bracketed by fault-free evaluations
/// of the (alive) overlay.
fn run_arm(scenario: &Scenario, seed: u64, traffic: Option<TrafficConfig>) -> AblationArm {
    let (mut engine, mut rng) = traffic_engine(scenario, seed, traffic);
    let start_median90_ms = percentile_or_inf(&engine.evaluate_alive(0.9), 50.0);
    let mut per_round_mean90_ms = Vec::with_capacity(scenario.rounds);
    let mut total_messages = 0;
    for _ in 0..scenario.rounds {
        let stats = engine.run_round(&mut rng);
        per_round_mean90_ms.push(stats.mean_lambda90_ms);
        if let Some(t) = engine.last_traffic_stats() {
            total_messages += t.messages;
        }
    }
    engine.topology().assert_invariants();
    AblationArm {
        start_median90_ms,
        final_median90_ms: percentile_or_inf(&engine.evaluate_alive(0.9), 50.0),
        per_round_mean90_ms,
        total_messages,
    }
}

/// The load ablation: the same world and seed run blocks-only and
/// combined, so the curves differ only by the installed workload (which
/// consumes no RNG — the block schedule is identical in both arms).
pub fn run_ablation(scenario: &Scenario, seed: u64) -> TrafficAblationResult {
    TrafficAblationResult {
        blocks_only: run_arm(scenario, seed, None),
        combined: run_arm(scenario, seed, Some(workload(seed))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 80,
            rounds: 8,
            blocks_per_round: 15,
            seeds: vec![1],
            ..Scenario::paper()
        }
    }

    #[test]
    fn combined_run_traces_every_class_every_round() {
        let s = tiny();
        let r = run_combined(&s, 1);
        assert_eq!(r.per_round.len(), s.rounds);
        assert_eq!(r.class_names, ["tx", "announce", "control"]);
        for p in &r.per_round {
            assert!(p.messages > 0, "the paper stream is dense");
            assert_eq!(p.class_lambda90_ms.len(), 3);
            for (&l90, &l50) in p.class_lambda90_ms.iter().zip(&p.class_lambda50_ms) {
                assert!(l90.is_finite() && l50.is_finite());
                assert!(l50 <= l90);
            }
        }
        assert!(
            r.total_messages >= s.rounds * s.nodes * 8,
            "≈10.5/node/round"
        );
        assert!(r.peak_round_messages <= r.total_messages);
        assert!(r.final_median90_ms.is_finite());
        assert_eq!(r.view_rebuilds, 1, "combined rounds must keep patching");
        assert_eq!(r.table().len(), s.rounds);
    }

    #[test]
    fn combined_run_is_deterministic_per_seed() {
        let s = tiny();
        let a = run_combined(&s, 2);
        let b = run_combined(&s, 2);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.final_median90_ms.to_bits(), b.final_median90_ms.to_bits());
        for (x, y) in a.per_round.iter().zip(&b.per_round) {
            assert_eq!(x.messages, y.messages);
            assert_eq!(x.class_lambda90_ms, y.class_lambda90_ms);
        }
    }

    #[test]
    fn ablation_keeps_learning_under_combined_load() {
        let s = tiny();
        let r = run_ablation(&s, 1);
        assert_eq!(r.blocks_only.total_messages, 0);
        assert!(r.combined.total_messages > 0);
        assert_eq!(
            r.blocks_only.per_round_mean90_ms.len(),
            r.combined.per_round_mean90_ms.len()
        );
        assert!(
            r.combined.improvement() > 0.0,
            "λ90 must still improve under combined load: start {:.1} ms, final {:.1} ms",
            r.combined.start_median90_ms,
            r.combined.final_median90_ms
        );
        assert!(r.blocks_only.improvement() > 0.0);
        assert_eq!(r.table().len(), s.rounds);
    }
}
