//! Continuous transaction-stream workloads over the message-level engine.
//!
//! Blocks are rare (~one source per round); the networks Perigee targets
//! additionally carry orders of magnitude more *transaction* traffic —
//! Ethereum's relay layer moves thousands of small messages per second
//! (the Ethna measurement study), and DAG protocols push many blocks per
//! second. This module generates that stream: a [`TrafficConfig`] holds
//! one or more [`TrafficClass`]es, each a seeded Poisson origination
//! process (`λ` messages per node per round) with its own message size
//! and [`FanoutPolicy`] — flood, Bitcoin-style INV/GETDATA, or the
//! push/pull hybrid ([`GossipMode::PushPull`](crate::gossip::GossipMode)).
//!
//! # Determinism
//!
//! Origination counts are **pure hashes**, not RNG draws: each
//! `(seed, round, class, node)` key is mixed through the same SplitMix64
//! finalizer the fault layer uses and fed to Knuth's inversion loop, so
//! the message list for a round is a function of the config alone —
//! independent of thread count, queue kind, simulation order and of how
//! many other subsystems consumed randomness. Messages are emitted in
//! canonical order (classes in config order, nodes ascending, repeats
//! adjacent), which is the batch order the engine simulates them in.
//!
//! # Batched simulation
//!
//! A round's messages are meant to be pushed through
//! [`TopologyView::gossip_batch_into`](crate::TopologyView::gossip_batch_into)
//! — tens of thousands of messages share one announcement pass through a
//! [`GossipScratch`](crate::GossipScratch), with per-batch epoch stamps
//! replacing the per-message O(n + m) buffer resets. Traffic is
//! fault-free by contract: link faults are a block-path concern, and the
//! traffic stream measures steady-state relay cost.

use crate::bandwidth::TransferModel;
use crate::error::NetsimError;
use crate::faults::{mix, u01};
use crate::gossip::{BatchMessage, GossipConfig, GossipMode};
use crate::node::NodeId;
use crate::population::Population;

/// Largest per-class origination rate accepted by
/// [`TrafficConfig::validate`]. Knuth's inversion loop runs `O(λ)`
/// iterations per `(node, class)` key, and rates beyond this are far
/// outside any measured per-node transaction load.
pub const MAX_LAMBDA_PER_NODE: f64 = 64.0;

/// Per-message fan-out policy of a traffic class — the traffic-layer
/// mirror of [`GossipMode`], without the transfer model (the class's
/// `size_mb` supplies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanoutPolicy {
    /// Push the full message to every neighbor.
    Flood,
    /// Announce, wait for a GETDATA, deliver (Bitcoin transaction relay).
    InvGetData,
    /// Push whole to the first `push_degree` CSR neighbors, announce to
    /// the rest (Ethereum's `sqrt(peers)` transaction relay).
    PushPull {
        /// Number of leading CSR-row neighbors that receive full pushes.
        push_degree: u32,
    },
}

impl FanoutPolicy {
    fn mode(self) -> GossipMode {
        match self {
            FanoutPolicy::Flood => GossipMode::Flood,
            FanoutPolicy::InvGetData => GossipMode::InvGetData,
            FanoutPolicy::PushPull { push_degree } => GossipMode::PushPull { push_degree },
        }
    }
}

/// One class of traffic: a name for reporting, a Poisson origination
/// rate, a message size and a fan-out policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficClass {
    /// Reporting label (`"tx"`, `"announce"`, …).
    pub name: String,
    /// Poisson origination rate: expected messages per alive node per
    /// round.
    pub lambda_per_node: f64,
    /// Message size in MB, fed to the [`TransferModel`] of every message
    /// of this class (`0.0` = negligible transfer).
    pub size_mb: f64,
    /// How messages of this class fan out.
    pub policy: FanoutPolicy,
}

impl TrafficClass {
    /// The [`GossipConfig`] every message of this class propagates under.
    pub fn gossip_config(&self) -> GossipConfig {
        GossipConfig {
            mode: self.policy.mode(),
            transfer: TransferModel::new(self.size_mb),
        }
    }
}

/// One originated message of a round's traffic stream: who sends it and
/// which class it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficMessage {
    /// Originating node.
    pub source: NodeId,
    /// Index into [`TrafficConfig::classes`].
    pub class: u32,
}

/// A seeded multi-class traffic workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficConfig {
    /// Seed of the hash-based origination process (independent of every
    /// other subsystem seed).
    pub seed: u64,
    /// Traffic classes, in reporting and batch order.
    pub classes: Vec<TrafficClass>,
}

impl TrafficConfig {
    /// A workload shaped like a public transaction network's steady
    /// state, totalling 10.5 expected messages per node per round —
    /// ≥10k messages per round at 1000 nodes with > 4σ margin:
    ///
    /// * `tx` — λ = 8.0, ~500 byte transactions over INV/GETDATA
    ///   (Bitcoin relay);
    /// * `announce` — λ = 2.0, ~2 KB bundles over push/pull with
    ///   `push_degree = 3` (Ethereum-style `sqrt(peers)` pushes);
    /// * `control` — λ = 0.5, negligible-size floods (pings, address
    ///   gossip).
    pub fn paper_stream(seed: u64) -> Self {
        TrafficConfig {
            seed,
            classes: vec![
                TrafficClass {
                    name: "tx".to_owned(),
                    lambda_per_node: 8.0,
                    size_mb: 0.0005,
                    policy: FanoutPolicy::InvGetData,
                },
                TrafficClass {
                    name: "announce".to_owned(),
                    lambda_per_node: 2.0,
                    size_mb: 0.002,
                    policy: FanoutPolicy::PushPull { push_degree: 3 },
                },
                TrafficClass {
                    name: "control".to_owned(),
                    lambda_per_node: 0.5,
                    size_mb: 0.0,
                    policy: FanoutPolicy::Flood,
                },
            ],
        }
    }

    /// Validates every class: finite non-negative rate at most
    /// [`MAX_LAMBDA_PER_NODE`], finite non-negative size, non-empty
    /// class list.
    pub fn validate(&self) -> Result<(), NetsimError> {
        if self.classes.is_empty() {
            return Err(NetsimError::InvalidConfig(
                "traffic config needs at least one class",
            ));
        }
        for class in &self.classes {
            if !class.lambda_per_node.is_finite()
                || class.lambda_per_node < 0.0
                || class.lambda_per_node > MAX_LAMBDA_PER_NODE
            {
                return Err(NetsimError::InvalidConfig(
                    "traffic class rate must be finite, non-negative and at most 64 per node",
                ));
            }
            if !class.size_mb.is_finite() || class.size_mb < 0.0 {
                return Err(NetsimError::InvalidConfig(
                    "traffic class size must be finite and non-negative",
                ));
            }
        }
        Ok(())
    }

    /// Expected number of messages per round with `alive` alive nodes.
    pub fn expected_messages(&self, alive: usize) -> f64 {
        alive as f64 * self.classes.iter().map(|c| c.lambda_per_node).sum::<f64>()
    }

    /// Generates round `round`'s message list in canonical batch order:
    /// classes in config order, alive source nodes ascending, a node's
    /// repeat originations adjacent. Retired (churned-out) nodes
    /// originate nothing. Pure function of `(config, round, alive set)`.
    pub fn messages_for_round(&self, round: u64, population: &Population) -> Vec<TrafficMessage> {
        let mut out =
            Vec::with_capacity(self.expected_messages(population.alive_count()).ceil() as usize);
        self.messages_for_round_into(round, population, &mut out);
        out
    }

    /// [`TrafficConfig::messages_for_round`] into a reused buffer.
    pub fn messages_for_round_into(
        &self,
        round: u64,
        population: &Population,
        out: &mut Vec<TrafficMessage>,
    ) {
        out.clear();
        for (class_idx, class) in self.classes.iter().enumerate() {
            if class.lambda_per_node <= 0.0 {
                continue;
            }
            // exp(-λ), hoisted out of the per-node inversion loop.
            let floor = (-class.lambda_per_node).exp();
            for node in 0..population.len() as u32 {
                let id = NodeId::new(node);
                if !population.is_alive(id) {
                    continue;
                }
                let count = poisson_count(self.seed, round, class_idx as u64, node, floor);
                for _ in 0..count {
                    out.push(TrafficMessage {
                        source: id,
                        class: class_idx as u32,
                    });
                }
            }
        }
    }

    /// Maps a round's messages to the [`BatchMessage`] list
    /// [`TopologyView::gossip_batch_into`](crate::TopologyView::gossip_batch_into)
    /// consumes, resolving each message's class to its [`GossipConfig`]
    /// once.
    pub fn batch_for(&self, messages: &[TrafficMessage], out: &mut Vec<BatchMessage>) {
        let configs: Vec<GossipConfig> = self.classes.iter().map(|c| c.gossip_config()).collect();
        out.clear();
        out.reserve(messages.len());
        out.extend(messages.iter().map(|m| BatchMessage {
            source: m.source,
            config: configs[m.class as usize],
        }));
    }
}

/// Knuth's Poisson inversion on a hash stream: multiplies uniform draws
/// keyed by `(seed, round, class, node, draw index)` until the product
/// falls below `floor = exp(-λ)`. `O(λ)` mixes per key, no RNG state.
fn poisson_count(seed: u64, round: u64, class: u64, node: u32, floor: f64) -> u32 {
    // Decorrelate the key dimensions with one mix layer each, like the
    // fault layer's draw keys.
    let key = mix(seed ^ mix(round ^ mix((class << 32) ^ node as u64)));
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        // Odd stride walks the full 2^64 ring, so draw indices never
        // collide for one key.
        p *= u01(mix(
            key.wrapping_add((k as u64).wrapping_mul(0xA076_1D64_78BD_642F))
        ));
        if p <= floor {
            return k;
        }
        k += 1;
    }
}

mod codec {
    //! Checkpoint codec impls (see `serde::bin`): traffic rides in the
    //! run snapshot so a resumed run regenerates the identical stream.

    use serde::bin::{Decode, DecodeError, Encode, Reader};

    use super::{FanoutPolicy, TrafficClass, TrafficConfig};

    impl Encode for FanoutPolicy {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                FanoutPolicy::Flood => 0u8.encode(out),
                FanoutPolicy::InvGetData => 1u8.encode(out),
                FanoutPolicy::PushPull { push_degree } => {
                    2u8.encode(out);
                    push_degree.encode(out);
                }
            }
        }
    }

    impl Decode for FanoutPolicy {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            match u8::decode(r)? {
                0 => Ok(FanoutPolicy::Flood),
                1 => Ok(FanoutPolicy::InvGetData),
                2 => Ok(FanoutPolicy::PushPull {
                    push_degree: Decode::decode(r)?,
                }),
                _ => Err(DecodeError::new("unknown fanout policy tag")),
            }
        }
    }

    impl Encode for TrafficClass {
        fn encode(&self, out: &mut Vec<u8>) {
            self.name.encode(out);
            self.lambda_per_node.encode(out);
            self.size_mb.encode(out);
            self.policy.encode(out);
        }
    }

    impl Decode for TrafficClass {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(TrafficClass {
                name: Decode::decode(r)?,
                lambda_per_node: Decode::decode(r)?,
                size_mb: Decode::decode(r)?,
                policy: Decode::decode(r)?,
            })
        }
    }

    impl Encode for TrafficConfig {
        fn encode(&self, out: &mut Vec<u8>) {
            self.seed.encode(out);
            self.classes.encode(out);
        }
    }

    impl Decode for TrafficConfig {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(TrafficConfig {
                seed: Decode::decode(r)?,
                classes: Decode::decode(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use serde::bin::{Decode, Encode, Reader};

    fn population(n: usize, seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed);
        PopulationBuilder::new(n).build(&mut rng).unwrap()
    }

    #[test]
    fn stream_is_deterministic_and_in_canonical_order() {
        let pop = population(200, 1);
        let cfg = TrafficConfig::paper_stream(99);
        let a = cfg.messages_for_round(7, &pop);
        let b = cfg.messages_for_round(7, &pop);
        assert_eq!(a, b);
        // Classes ascending, sources ascending within a class.
        for w in a.windows(2) {
            assert!(
                w[0].class < w[1].class || (w[0].class == w[1].class && w[0].source <= w[1].source)
            );
        }
        // Different rounds and seeds decorrelate.
        assert_ne!(a, cfg.messages_for_round(8, &pop));
        assert_ne!(
            a,
            TrafficConfig::paper_stream(100).messages_for_round(7, &pop)
        );
    }

    #[test]
    fn volume_tracks_expectation() {
        let pop = population(1000, 2);
        let cfg = TrafficConfig::paper_stream(5);
        let expect = cfg.expected_messages(pop.alive_count());
        let got = cfg.messages_for_round(0, &pop).len() as f64;
        // 4σ band around λ·n.
        let sigma = expect.sqrt();
        assert!(
            (got - expect).abs() < 4.0 * sigma,
            "got {got}, expected {expect} ± {sigma}"
        );
        assert!(got >= 10_000.0, "paper stream must clear 10k messages");
    }

    #[test]
    fn retired_nodes_originate_nothing() {
        let mut pop = population(50, 3);
        let victim = NodeId::new(17);
        pop.retire(victim);
        let cfg = TrafficConfig::paper_stream(11);
        let msgs = cfg.messages_for_round(4, &pop);
        assert!(msgs.iter().all(|m| m.source != victim));
        // Survivors' draws are unchanged by the retirement.
        let full = population(50, 3);
        let all = cfg.messages_for_round(4, &full);
        let filtered: Vec<_> = all.iter().filter(|m| m.source != victim).copied().collect();
        assert_eq!(msgs, filtered);
    }

    #[test]
    fn validate_rejects_bad_classes() {
        let mut cfg = TrafficConfig::paper_stream(0);
        cfg.classes[0].lambda_per_node = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.classes[0].lambda_per_node = -1.0;
        assert!(cfg.validate().is_err());
        cfg.classes[0].lambda_per_node = MAX_LAMBDA_PER_NODE * 2.0;
        assert!(cfg.validate().is_err());
        cfg.classes[0].lambda_per_node = 1.0;
        cfg.classes[0].size_mb = f64::INFINITY;
        assert!(cfg.validate().is_err());
        cfg.classes[0].size_mb = 0.1;
        assert!(cfg.validate().is_ok());
        cfg.classes.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn codec_round_trips() {
        let cfg = TrafficConfig::paper_stream(1234);
        let mut bytes = Vec::new();
        cfg.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = TrafficConfig::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(cfg, back);
    }

    #[test]
    fn batch_for_maps_classes_to_configs() {
        let pop = population(60, 9);
        let cfg = TrafficConfig::paper_stream(21);
        let msgs = cfg.messages_for_round(0, &pop);
        let mut batch = Vec::new();
        cfg.batch_for(&msgs, &mut batch);
        assert_eq!(batch.len(), msgs.len());
        for (m, b) in msgs.iter().zip(&batch) {
            assert_eq!(b.source, m.source);
            assert_eq!(b.config, cfg.classes[m.class as usize].gossip_config());
        }
    }
}
