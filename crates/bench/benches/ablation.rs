//! Ablation benches: the design-parameter sweeps DESIGN.md calls out
//! (exploration count, scoring percentile, round length, UCB constant),
//! each printed and timed at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};

use perigee_experiments::{ablation, Scenario};

fn bench_scenario() -> Scenario {
    Scenario {
        nodes: 100,
        rounds: 4,
        blocks_per_round: 15,
        seeds: vec![1],
        ..Scenario::paper()
    }
}

fn ablations(c: &mut Criterion) {
    let scenario = bench_scenario();

    let r = ablation::sweep_exploration(&scenario, 1, &[0, 2, 4]);
    for p in &r.points {
        println!(
            "ablation/explore={}: median λ90 = {:.1} ms",
            p.value, p.median90_ms
        );
    }
    let r = ablation::sweep_percentile(&scenario, 1, &[50.0, 90.0]);
    for p in &r.points {
        println!(
            "ablation/percentile={}: median λ90 = {:.1} ms",
            p.value, p.median90_ms
        );
    }

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("exploration_sweep", |b| {
        b.iter(|| ablation::sweep_exploration(&scenario, 1, &[0, 2, 4]));
    });
    group.bench_function("percentile_sweep", |b| {
        b.iter(|| ablation::sweep_percentile(&scenario, 1, &[50.0, 90.0]));
    });
    group.bench_function("round_length_sweep", |b| {
        b.iter(|| ablation::sweep_round_length(&scenario, 1, &[10, 30]));
    });
    group.bench_function("ucb_c_sweep", |b| {
        b.iter(|| ablation::sweep_ucb_c(&scenario, 1, &[10.0, 50.0]));
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
