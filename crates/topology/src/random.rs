//! The random connection policy (§3.1) — Bitcoin's de-facto topology.

use rand::Rng;

use perigee_netsim::{ConnectionLimits, LatencyModel, NodeId, Population, Topology};

use crate::builder::TopologyBuilder;

/// Every node opens `dout` connections to uniformly random peers, subject to
/// the targets' incoming limits (declined connections are retried against
/// fresh picks).
///
/// # Examples
///
/// ```
/// use perigee_topology::{RandomBuilder, TopologyBuilder};
/// use perigee_netsim::{ConnectionLimits, GeoLatencyModel, PopulationBuilder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let pop = PopulationBuilder::new(200).build(&mut rng).unwrap();
/// let lat = GeoLatencyModel::new(&pop, 0);
/// let topo = RandomBuilder::new().build(&pop, &lat, ConnectionLimits::paper_default(), &mut rng);
/// assert!(topo.is_connected());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomBuilder {
    _private: (),
}

impl RandomBuilder {
    /// Creates the builder.
    pub fn new() -> Self {
        RandomBuilder { _private: () }
    }
}

impl TopologyBuilder for RandomBuilder {
    fn build<L: LatencyModel + ?Sized, R: Rng + ?Sized>(
        &self,
        population: &Population,
        _latency: &L,
        limits: ConnectionLimits,
        rng: &mut R,
    ) -> Topology {
        let n = population.len();
        let mut topo = Topology::new(n, limits);
        let dout = limits.dout.min(n.saturating_sub(1));
        // Shuffled node order avoids biasing early nodes' incoming slots.
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in &order {
            let u = NodeId::new(i);
            let mut attempts = 0;
            while topo.out_degree(u) < dout && attempts < 50 * dout.max(1) {
                attempts += 1;
                let v = NodeId::new(rng.gen_range(0..n as u32));
                if v == u {
                    continue;
                }
                let _ = topo.connect(u, v);
            }
        }
        topo
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigee_netsim::{GeoLatencyModel, PopulationBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: usize, seed: u64) -> (Population, Topology) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let topo =
            RandomBuilder::new().build(&pop, &lat, ConnectionLimits::paper_default(), &mut rng);
        (pop, topo)
    }

    #[test]
    fn every_node_reaches_full_out_degree() {
        let (_, topo) = build(300, 1);
        for i in 0..300u32 {
            assert_eq!(topo.out_degree(NodeId::new(i)), 8);
        }
        topo.assert_invariants();
    }

    #[test]
    fn incoming_limits_respected() {
        let (_, topo) = build(300, 2);
        for i in 0..300u32 {
            assert!(topo.in_degree(NodeId::new(i)) <= 20);
        }
    }

    #[test]
    fn random_graph_is_connected_whp() {
        // Degree-8 random graphs on hundreds of nodes are connected with
        // overwhelming probability; check a few seeds.
        for seed in 0..5 {
            let (_, topo) = build(250, seed);
            assert!(topo.is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = build(100, 7);
        let (_, b) = build(100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_network_handles_degree_clamp() {
        let (_, topo) = build(3, 1);
        // dout clamps to n-1 = 2.
        for i in 0..3u32 {
            assert!(topo.out_degree(NodeId::new(i)) <= 2);
        }
    }
}
