//! Figure 5: what does Perigee learn?
//!
//! Histograms of the final p2p graph's edge latencies are bimodal: a low
//! mode (intra-continent links) and a high mode (inter-continent links).
//! Perigee-Subset concentrates its edge mass at the low mode — nodes learn
//! to pick nearby outgoing neighbors — while random and geometric do not
//! shift mass the same way.

use perigee_metrics::{Histogram, Table};
use perigee_netsim::LatencyModel;

use crate::runner::{run_parallel, Algorithm, RunOutput};
use crate::scenario::Scenario;

/// The edge-latency histogram of one algorithm's final topology.
#[derive(Debug, Clone)]
pub struct EdgeHistogram {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Histogram over edge latencies (ms).
    pub histogram: Histogram,
    /// Fraction of edges in the low (intra-continent) mode.
    pub low_mode_fraction: f64,
    /// Mean edge latency (ms).
    pub mean_latency_ms: f64,
}

/// The figure: one histogram per algorithm.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Histograms, in run order.
    pub histograms: Vec<EdgeHistogram>,
    /// The low/high mode split point used (ms).
    pub mode_split_ms: f64,
}

impl Fig5Result {
    /// Result for one algorithm.
    pub fn get(&self, algorithm: Algorithm) -> &EdgeHistogram {
        self.histograms
            .iter()
            .find(|h| h.algorithm == algorithm)
            .expect("algorithm was run")
    }

    /// Summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "algorithm".into(),
            format!("edges < {:.0} ms", self.mode_split_ms),
            "mean edge latency (ms)".into(),
        ]);
        for h in &self.histograms {
            t.row(vec![
                h.algorithm.name().into(),
                format!("{:.1}%", h.low_mode_fraction * 100.0),
                format!("{:.1}", h.mean_latency_ms),
            ]);
        }
        t
    }
}

/// The algorithms compared in the paper's Fig. 5.
pub const FIG5_ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Random,
    Algorithm::Geographic,
    Algorithm::Geometric,
    Algorithm::PerigeeSubset,
];

/// Computes the edge histogram of one finished run.
pub fn edge_histogram(run: &RunOutput, bins: usize, max_ms: f64, split_ms: f64) -> EdgeHistogram {
    let mut histogram = Histogram::new(0.0, max_ms, bins);
    let edges = run.topology.undirected_edges();
    let mut sum = 0.0;
    for &(u, v) in &edges {
        let d = run.latency.delay(u, v).as_ms();
        histogram.add(d);
        sum += d;
    }
    let low_mode_fraction = histogram.fraction_below(split_ms);
    EdgeHistogram {
        algorithm: run.algorithm,
        histogram,
        low_mode_fraction,
        mean_latency_ms: if edges.is_empty() {
            0.0
        } else {
            sum / edges.len() as f64
        },
    }
}

/// Runs Fig. 5 under `scenario` (uniform hash power in the paper).
pub fn run(scenario: &Scenario) -> Fig5Result {
    // One seed suffices for a histogram over thousands of edges; use the
    // first scenario seed for reproducibility.
    let seed = scenario.seeds.first().copied().unwrap_or(1);
    let outputs = run_parallel(FIG5_ALGORITHMS.iter().map(|&a| (a, seed)), scenario);
    // The geo matrix's intra-continent delays top out around 40 ms (plus
    // jitter); 60 ms separates the two modes cleanly.
    let split = 60.0;
    let histograms = outputs
        .iter()
        .map(|run| edge_histogram(run, 20, 220.0, split))
        .collect();
    Fig5Result {
        histograms,
        mode_split_ms: split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perigee_concentrates_mass_at_the_low_mode() {
        let scenario = Scenario {
            nodes: 150,
            rounds: 8,
            blocks_per_round: 25,
            seeds: vec![2],
            ..Scenario::paper()
        };
        let r = run(&scenario);
        let perigee = r.get(Algorithm::PerigeeSubset).low_mode_fraction;
        let random = r.get(Algorithm::Random).low_mode_fraction;
        assert!(
            perigee > random,
            "perigee low-mode mass {perigee:.2} must exceed random {random:.2}"
        );
        // Geographic also shifts mass low (50% local connections).
        let geo = r.get(Algorithm::Geographic).low_mode_fraction;
        assert!(geo > random);
        assert_eq!(r.table().len(), 4);
    }
}
