//! Link-level fault injection: seeded, bit-reproducible network weather.
//!
//! A [`FaultPlan`] schedules per-link faults over a whole run — drop
//! probability, extra delay and jitter, message duplication, link flaps,
//! timed network partitions with heal, and regional degradation windows —
//! without touching the propagation engines' determinism contract. Every
//! fault decision is a *pure function* of `(plan seed, round, global block
//! index, CSR edge index, copy, purpose)` through a SplitMix64-style
//! stateless hash: no protocol RNG is ever consumed mid-flood, so faulted
//! rounds stay bit-identical across thread counts and both
//! [`QueueKind`](crate::pq::QueueKind)s, and an inert plan (all rates
//! zero, no windows) is bit-identical to running with no plan at all.
//!
//! # Where faults land in the event pipeline
//!
//! Faults apply to the **announcement leg** of every directed edge — the
//! link crossing that first offers a block to a neighbor (the relaxation
//! edge of the analytic flood; the block push in flood gossip; the INV in
//! INV/GETDATA gossip). Per block and per directed edge,
//! [`BlockFaults::announce_leg`] resolves drop, duplication, extra delay
//! and jitter into *at most one* effective crossing (duplicated copies
//! collapse to the earliest survivor), which preserves the gossip
//! engine's one-announcement-per-edge invariant: a dropped announcement
//! consumes exactly one sequence number (like an inert event) and records
//! no delivery, so the event schedule — and therefore tie-breaking — is
//! unchanged between queue kinds. Request/response legs (GETDATA and the
//! block transfer it pulls) are modelled as reliable-but-slowed: they pay
//! the regional slow factor via [`BlockFaults::scaled`] but never drop,
//! so a delivered INV can always complete (no request deadlock). Link
//! flaps and partitions take a link down entirely for whole rounds: both
//! directions of the pair fail together, and nothing crosses.
//!
//! # Compilation
//!
//! Per round the engine calls [`FaultPlan::compile`], which resolves the
//! active [`FaultWindow`] rates and materializes the round's link state
//! against a frozen [`TopologyView`]: a directed-edge `down` bitset
//! (flaps + partitions) and a per-edge `slow` factor vector (regional
//! windows). Both stay empty — and every per-edge check a cheap
//! `is_empty()` — when no flap/partition/regional fault is active, so the
//! zero-fault path allocates nothing.

use serde::{Deserialize, Serialize};

use crate::node::Region;
use crate::time::SimTime;
use crate::view::TopologyView;

/// SplitMix64 finalizer: the stateless mixing function behind every fault
/// decision (and the traffic layer's hash-based Poisson draws — see
/// [`traffic`](crate::traffic)).
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)` using the top 53 bits.
#[inline]
pub(crate) fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Decorrelates the edge index from the purpose tag inside a draw key.
const EDGE_STRIDE: u64 = 0xD6E8_FEB8_6659_FD93;

/// Per-link fault rates applied to every announcement crossing a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkFaultRates {
    /// Probability an announcement copy is dropped on the link.
    pub drop_prob: f64,
    /// Deterministic extra delay added to every surviving announcement.
    pub extra_delay: SimTime,
    /// Uniform jitter in `[0, jitter)` added on top of `extra_delay`.
    pub jitter: SimTime,
    /// Probability the announcement is duplicated (the duplicate rolls
    /// its own drop and jitter; the earliest surviving copy wins).
    pub duplicate_prob: f64,
}

impl LinkFaultRates {
    /// No faults at all.
    pub const NONE: LinkFaultRates = LinkFaultRates {
        drop_prob: 0.0,
        extra_delay: SimTime::ZERO,
        jitter: SimTime::ZERO,
        duplicate_prob: 0.0,
    };

    /// Returns `true` if these rates cannot alter any announcement.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.drop_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.extra_delay.as_ms() <= 0.0
            && self.jitter.as_ms() <= 0.0
    }

    fn validate(&self) -> Result<(), &'static str> {
        if !(0.0..=1.0).contains(&self.drop_prob) {
            return Err("drop_prob must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.duplicate_prob) {
            return Err("duplicate_prob must be in [0, 1]");
        }
        if !self.extra_delay.is_finite() || self.extra_delay.as_ms() < 0.0 {
            return Err("extra_delay must be finite and non-negative");
        }
        if !self.jitter.is_finite() || self.jitter.as_ms() < 0.0 {
            return Err("jitter must be finite and non-negative");
        }
        Ok(())
    }
}

/// A window of rounds `[start, end)` during which `rates` replace the
/// plan's base rates. When windows overlap, the later-listed window wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First round (inclusive) the window applies to.
    pub start: usize,
    /// First round (exclusive) after the window.
    pub end: usize,
    /// Rates in force while the window is active.
    pub rates: LinkFaultRates,
}

/// A population of flapping links: a fixed fraction of the (undirected)
/// links cycles down-for-`down`-rounds every `period` rounds, each link
/// on its own seeded phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlaps {
    /// Fraction of undirected links that flap at all.
    pub fraction: f64,
    /// Cycle length in rounds.
    pub period: usize,
    /// Rounds per cycle the link spends down (must be `< period`).
    pub down: usize,
}

/// A timed network partition: from round `start` (inclusive) to round
/// `heal` (exclusive), every link crossing the seeded two-sided split is
/// down. Roughly `fraction` of the nodes land on side A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First round (inclusive) of the partition.
    pub start: usize,
    /// First round (exclusive) after the partition heals.
    pub heal: usize,
    /// Expected fraction of nodes on side A of the split.
    pub fraction: f64,
}

/// A regional degradation window: every link touching a node in `region`
/// is slowed by `slow_factor` while the window is active. Overlapping
/// windows multiply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionalWindow {
    /// The degraded region.
    pub region: Region,
    /// First round (inclusive) of the brownout.
    pub start: usize,
    /// First round (exclusive) after the brownout.
    pub end: usize,
    /// Multiplier on the latency of every link touching the region
    /// (`>= 1.0` slows it down).
    pub slow_factor: f64,
}

/// A seeded, bit-reproducible schedule of link-level faults for a run.
///
/// Compile one [`RoundFaults`] per round via [`FaultPlan::compile`], then
/// derive one [`BlockFaults`] per block via [`RoundFaults::block`]. All
/// decisions are stateless hashes of the seed — the plan never consumes
/// protocol RNG, so installing it cannot perturb an engine's random
/// stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed for every fault decision in the plan.
    pub seed: u64,
    /// Rates in force outside any [`FaultWindow`].
    pub base: LinkFaultRates,
    /// Timed rate overrides (later-listed windows win on overlap).
    pub windows: Vec<FaultWindow>,
    /// Optional flapping-link population.
    pub flaps: Option<LinkFlaps>,
    /// Timed partitions (a link crossing *any* active split is down).
    pub partitions: Vec<PartitionWindow>,
    /// Regional degradation windows (overlaps multiply).
    pub regional: Vec<RegionalWindow>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults of any kind.
    pub fn inert(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Returns `true` if this plan can never alter any round.
    pub fn is_inert(&self) -> bool {
        self.base.is_inert()
            && self.windows.iter().all(|w| w.rates.is_inert())
            && self.flaps.is_none()
            && self.partitions.is_empty()
            && self.regional.is_empty()
    }

    /// Validates the plan's parameters.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.base.validate()?;
        for w in &self.windows {
            w.rates.validate()?;
        }
        if let Some(f) = self.flaps {
            if !(0.0..=1.0).contains(&f.fraction) {
                return Err("flap fraction must be in [0, 1]");
            }
            if f.period == 0 || f.down >= f.period {
                return Err("flap down must be < period and period > 0");
            }
        }
        for p in &self.partitions {
            if !(0.0..=1.0).contains(&p.fraction) {
                return Err("partition fraction must be in [0, 1]");
            }
        }
        for r in &self.regional {
            if !r.slow_factor.is_finite() || r.slow_factor < 0.0 {
                return Err("regional slow_factor must be finite and non-negative");
            }
        }
        Ok(())
    }

    /// Which side of partition window `w` node `v` lands on.
    #[inline]
    fn partition_side(&self, w: usize, v: u32, fraction: f64) -> bool {
        u01(mix(self.seed ^ 0x5A17 ^ ((w as u64) << 32) ^ u64::from(v))) < fraction
    }

    /// Resolves this plan against a frozen snapshot for one round.
    ///
    /// `regions[i]` must be node `i`'s region (dead slots may carry any
    /// value — their CSR rows are empty). The result borrows nothing and
    /// is immutable, so blocks can consult it from any thread.
    pub fn compile(&self, round: usize, view: &TopologyView, regions: &[Region]) -> RoundFaults {
        // Rates: base, overridden by the last-listed active window.
        let mut rates = self.base;
        for w in &self.windows {
            if w.start <= round && round < w.end {
                rates = w.rates;
            }
        }

        let n = view.offsets.len() - 1;
        let m = view.edges.len();

        // Partitions: assign sides per active window, then down every
        // crossing edge. Flaps: membership and phase are per undirected
        // pair and round-independent; only up/down cycles with the round.
        let active_partitions: Vec<(usize, f64)> = self
            .partitions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.start <= round && round < p.heal)
            .map(|(i, p)| (i, p.fraction))
            .collect();
        let mut down = Vec::new();
        if self.flaps.is_some() || !active_partitions.is_empty() {
            let mut any = false;
            let mut bits = vec![0u64; m.div_ceil(64)];
            for u in 0..n {
                for e in view.offsets[u]..view.offsets[u + 1] {
                    let v = view.edges[e];
                    let mut is_down = false;
                    if let Some(f) = self.flaps {
                        let (a, b) = if (u as u32) < v {
                            (u as u32, v)
                        } else {
                            (v, u as u32)
                        };
                        let pair = mix(self.seed ^ 0xF1A9 ^ ((u64::from(a) << 32) | u64::from(b)));
                        if u01(pair) < f.fraction {
                            let phase = mix(pair) as usize % f.period;
                            is_down |= (round + phase) % f.period < f.down;
                        }
                    }
                    if !is_down {
                        for &(w, fraction) in &active_partitions {
                            if self.partition_side(w, u as u32, fraction)
                                != self.partition_side(w, v, fraction)
                            {
                                is_down = true;
                                break;
                            }
                        }
                    }
                    if is_down {
                        bits[e >> 6] |= 1 << (e & 63);
                        any = true;
                    }
                }
            }
            if any {
                down = bits;
            }
        }

        // Regional slowdowns: per-edge multiplier, active windows multiply.
        let active_regional: Vec<&RegionalWindow> = self
            .regional
            .iter()
            .filter(|r| r.start <= round && round < r.end)
            .collect();
        let mut slow = Vec::new();
        if !active_regional.is_empty() {
            slow = vec![1.0f64; m];
            for u in 0..n {
                let (lo, hi) = (view.offsets[u], view.offsets[u + 1]);
                for (s, &dst) in slow[lo..hi].iter_mut().zip(&view.edges[lo..hi]) {
                    let v = dst as usize;
                    for r in &active_regional {
                        if regions[u] == r.region || regions[v] == r.region {
                            *s *= r.slow_factor;
                        }
                    }
                }
            }
        }

        RoundFaults {
            rates,
            key: mix(self.seed ^ mix(round as u64)),
            down,
            slow,
        }
    }
}

/// One round's resolved fault state: rates plus materialized link state.
///
/// Immutable once compiled — safe to share across the block fan-out.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFaults {
    rates: LinkFaultRates,
    key: u64,
    /// Directed-edge down bitset; empty when no link is down.
    down: Vec<u64>,
    /// Per-directed-edge latency multiplier; empty when all are 1.0.
    slow: Vec<f64>,
}

impl RoundFaults {
    /// The rates in force this round.
    #[inline]
    pub fn rates(&self) -> &LinkFaultRates {
        &self.rates
    }

    /// Does this round carry no faults at all — inert rates, no link
    /// down, no regional slowdown? Callers can skip the faulted
    /// propagation path entirely for such rounds (a windowed plan is
    /// inert outside its windows), which is how an installed-but-idle
    /// plan costs nothing.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.rates.is_inert() && self.down.is_empty() && self.slow.is_empty()
    }

    /// Is directed edge `e` down this round (flap or partition)?
    #[inline]
    pub fn edge_down(&self, e: usize) -> bool {
        !self.down.is_empty() && (self.down[e >> 6] >> (e & 63)) & 1 == 1
    }

    /// Number of directed edges down this round.
    pub fn down_count(&self) -> usize {
        self.down.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Derives the fault lens for one block. `global_block` must be the
    /// run-global block index so different blocks draw independent fates.
    #[inline]
    pub fn block(&self, global_block: usize) -> BlockFaults<'_> {
        BlockFaults {
            rf: self,
            block_key: mix(self.key ^ (global_block as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// What the fault lens did to one announcement leg (see
/// [`BlockFaults::announce_leg_classified`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegOutcome {
    /// Effective arrival latency; `None` if the announcement never
    /// arrives (link down or every copy dropped).
    pub time: Option<SimTime>,
    /// The surviving copy paid a regional slow factor, extra delay or
    /// jitter.
    pub delayed: bool,
    /// The duplication roll fired (a second copy was created, whether or
    /// not it survived).
    pub duplicated: bool,
}

/// The fault decisions for one block: a pure lens over [`RoundFaults`].
#[derive(Debug, Clone, Copy)]
pub struct BlockFaults<'a> {
    rf: &'a RoundFaults,
    block_key: u64,
}

impl BlockFaults<'_> {
    #[inline]
    fn draw(&self, e: usize, purpose: u64) -> f64 {
        u01(mix(self.block_key
            ^ (e as u64).wrapping_mul(EDGE_STRIDE)
            ^ purpose))
    }

    /// The fate of this block's announcement on directed edge `e` whose
    /// fault-free latency is `base`: `None` if it never arrives (link
    /// down, or every copy dropped), otherwise the effective latency —
    /// the regional slow factor times `base`, plus the smallest
    /// `extra_delay + jitter` over the surviving copies. With inert rates
    /// and no link state this returns `Some(base)` *bitwise* (no
    /// arithmetic is applied), which is what makes an inert plan
    /// bit-identical to no plan.
    #[inline]
    pub fn announce_leg(&self, e: usize, base: SimTime) -> Option<SimTime> {
        self.announce_leg_classified(e, base).time
    }

    /// [`Self::announce_leg`] plus a classification of what the lens did
    /// (delay applied? duplicate rolled?), computed from the same draws,
    /// so telemetry call sites can count fault events without a second
    /// pass over the hash stream.
    #[inline]
    pub fn announce_leg_classified(&self, e: usize, base: SimTime) -> LegOutcome {
        let rf = self.rf;
        if rf.edge_down(e) {
            return LegOutcome {
                time: None,
                delayed: false,
                duplicated: false,
            };
        }
        let (scaled, slowed) = if rf.slow.is_empty() {
            (base, false)
        } else {
            (base * rf.slow[e], rf.slow[e] != 1.0)
        };
        let r = &rf.rates;
        if r.is_inert() {
            return LegOutcome {
                time: Some(scaled),
                delayed: slowed,
                duplicated: false,
            };
        }
        let mut best: Option<SimTime> = None;
        if self.draw(e, 1) >= r.drop_prob {
            let jitter = if r.jitter.as_ms() > 0.0 {
                r.jitter * self.draw(e, 2)
            } else {
                SimTime::ZERO
            };
            best = Some(r.extra_delay + jitter);
        }
        let mut duplicated = false;
        if r.duplicate_prob > 0.0 && self.draw(e, 3) < r.duplicate_prob {
            duplicated = true;
            if self.draw(e, 4) >= r.drop_prob {
                let jitter = if r.jitter.as_ms() > 0.0 {
                    r.jitter * self.draw(e, 5)
                } else {
                    SimTime::ZERO
                };
                let extra = r.extra_delay + jitter;
                best = Some(match best {
                    Some(b) => b.min(extra),
                    None => extra,
                });
            }
        }
        let mut delayed = false;
        let time = best.map(|extra| {
            delayed = slowed || extra.as_ms() > 0.0;
            if extra.as_ms() == 0.0 {
                scaled
            } else {
                scaled + extra
            }
        });
        LegOutcome {
            time,
            delayed,
            duplicated,
        }
    }

    /// The effective latency of a reliable request/response leg (GETDATA,
    /// block transfer) on directed edge `e`: pays the regional slow
    /// factor but never drops — a delivered announcement can always
    /// complete. With no regional window this returns `base` bitwise.
    #[inline]
    pub fn scaled(&self, e: usize, base: SimTime) -> SimTime {
        let rf = self.rf;
        if rf.slow.is_empty() {
            base
        } else {
            base * rf.slow[e]
        }
    }
}

mod codec {
    //! Checkpoint codec impls (see `serde::bin`). A [`FaultPlan`] is pure
    //! configuration — every per-round decision is a stateless hash of the
    //! seed — so serializing the plan struct captures the fault schedule
    //! completely; no cursor or RNG position exists to save.

    use serde::bin::{Decode, DecodeError, Encode, Reader};

    use super::*;

    impl Encode for LinkFaultRates {
        fn encode(&self, out: &mut Vec<u8>) {
            self.drop_prob.encode(out);
            self.extra_delay.encode(out);
            self.jitter.encode(out);
            self.duplicate_prob.encode(out);
        }
    }

    impl Decode for LinkFaultRates {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(LinkFaultRates {
                drop_prob: f64::decode(r)?,
                extra_delay: SimTime::decode(r)?,
                jitter: SimTime::decode(r)?,
                duplicate_prob: f64::decode(r)?,
            })
        }
    }

    impl Encode for FaultWindow {
        fn encode(&self, out: &mut Vec<u8>) {
            self.start.encode(out);
            self.end.encode(out);
            self.rates.encode(out);
        }
    }

    impl Decode for FaultWindow {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(FaultWindow {
                start: usize::decode(r)?,
                end: usize::decode(r)?,
                rates: LinkFaultRates::decode(r)?,
            })
        }
    }

    impl Encode for LinkFlaps {
        fn encode(&self, out: &mut Vec<u8>) {
            self.fraction.encode(out);
            self.period.encode(out);
            self.down.encode(out);
        }
    }

    impl Decode for LinkFlaps {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(LinkFlaps {
                fraction: f64::decode(r)?,
                period: usize::decode(r)?,
                down: usize::decode(r)?,
            })
        }
    }

    impl Encode for PartitionWindow {
        fn encode(&self, out: &mut Vec<u8>) {
            self.start.encode(out);
            self.heal.encode(out);
            self.fraction.encode(out);
        }
    }

    impl Decode for PartitionWindow {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(PartitionWindow {
                start: usize::decode(r)?,
                heal: usize::decode(r)?,
                fraction: f64::decode(r)?,
            })
        }
    }

    impl Encode for RegionalWindow {
        fn encode(&self, out: &mut Vec<u8>) {
            self.region.encode(out);
            self.start.encode(out);
            self.end.encode(out);
            self.slow_factor.encode(out);
        }
    }

    impl Decode for RegionalWindow {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(RegionalWindow {
                region: Region::decode(r)?,
                start: usize::decode(r)?,
                end: usize::decode(r)?,
                slow_factor: f64::decode(r)?,
            })
        }
    }

    impl Encode for FaultPlan {
        fn encode(&self, out: &mut Vec<u8>) {
            self.seed.encode(out);
            self.base.encode(out);
            self.windows.encode(out);
            self.flaps.encode(out);
            self.partitions.encode(out);
            self.regional.encode(out);
        }
    }

    impl Decode for FaultPlan {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let plan = FaultPlan {
                seed: u64::decode(r)?,
                base: LinkFaultRates::decode(r)?,
                windows: Vec::decode(r)?,
                flaps: Option::decode(r)?,
                partitions: Vec::decode(r)?,
                regional: Vec::decode(r)?,
            };
            plan.validate()
                .map_err(|_| DecodeError::new("fault plan fails validation"))?;
            Ok(plan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConnectionLimits, Topology};
    use crate::latency::GeoLatencyModel;
    use crate::node::NodeId;
    use crate::population::PopulationBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn world(n: usize, seed: u64) -> (TopologyView, Vec<Region>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::paper_default());
        for i in 0..n as u32 {
            let _ = topo.connect(NodeId::new(i), NodeId::new((i + 1) % n as u32));
        }
        for _ in 0..2 * n {
            let u = NodeId::new(rng.gen_range(0..n as u32));
            let v = NodeId::new(rng.gen_range(0..n as u32));
            let _ = topo.connect(u, v);
        }
        let regions = pop.iter().map(|p| p.region).collect();
        (TopologyView::new(&topo, &lat, &pop), regions)
    }

    #[test]
    fn inert_plan_compiles_to_empty_state_and_identity_legs() {
        let (view, regions) = world(40, 1);
        let plan = FaultPlan::inert(7);
        assert!(plan.is_inert());
        let rf = plan.compile(3, &view, &regions);
        assert_eq!(rf.down_count(), 0);
        let bf = rf.block(12);
        for e in 0..view.edges.len() {
            let base = view.delay[e];
            assert_eq!(bf.announce_leg(e, base), Some(base));
            assert_eq!(bf.scaled(e, base), base);
        }
    }

    #[test]
    fn decisions_are_reproducible_and_block_dependent() {
        let (view, regions) = world(40, 2);
        let plan = FaultPlan {
            seed: 99,
            base: LinkFaultRates {
                drop_prob: 0.3,
                extra_delay: SimTime::from_ms(5.0),
                jitter: SimTime::from_ms(10.0),
                duplicate_prob: 0.2,
            },
            ..FaultPlan::default()
        };
        let rf1 = plan.compile(4, &view, &regions);
        let rf2 = plan.compile(4, &view, &regions);
        assert_eq!(rf1, rf2, "compilation must be deterministic");
        let (a, b) = (rf1.block(0), rf1.block(1));
        let mut diverged = false;
        let mut dropped = 0usize;
        for e in 0..view.edges.len() {
            let base = view.delay[e];
            let (fa, fb) = (a.announce_leg(e, base), b.announce_leg(e, base));
            assert_eq!(fa, rf2.block(0).announce_leg(e, base));
            if let Some(t) = fa {
                assert!(t >= base, "faults can only add delay");
            } else {
                dropped += 1;
            }
            diverged |= fa != fb;
        }
        assert!(diverged, "different blocks must draw different fates");
        assert!(dropped > 0, "a 30% drop rate must drop something");
    }

    #[test]
    fn windows_override_base_rates_with_later_wins() {
        let (view, regions) = world(20, 3);
        let burst = LinkFaultRates {
            drop_prob: 1.0,
            ..LinkFaultRates::NONE
        };
        let calm = LinkFaultRates::NONE;
        let plan = FaultPlan {
            seed: 5,
            base: calm,
            windows: vec![
                FaultWindow {
                    start: 2,
                    end: 8,
                    rates: burst,
                },
                FaultWindow {
                    start: 5,
                    end: 6,
                    rates: calm,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.compile(0, &view, &regions).rates(), &calm);
        assert_eq!(plan.compile(2, &view, &regions).rates(), &burst);
        // Overlap: the later-listed window wins.
        assert_eq!(plan.compile(5, &view, &regions).rates(), &calm);
        assert_eq!(plan.compile(7, &view, &regions).rates(), &burst);
        assert_eq!(plan.compile(8, &view, &regions).rates(), &calm);
        // A total drop window kills every announcement.
        let rf = plan.compile(3, &view, &regions);
        let bf = rf.block(0);
        for e in 0..view.edges.len() {
            assert_eq!(bf.announce_leg(e, view.delay[e]), None);
        }
    }

    #[test]
    fn partitions_down_crossing_edges_symmetrically_and_heal() {
        let (view, regions) = world(60, 4);
        let plan = FaultPlan {
            seed: 11,
            partitions: vec![PartitionWindow {
                start: 1,
                heal: 4,
                fraction: 0.5,
            }],
            ..FaultPlan::default()
        };
        let rf = plan.compile(2, &view, &regions);
        assert!(rf.down_count() > 0, "a 50/50 split must cut something");
        // Downness is symmetric: e down iff reverse[e] down.
        for e in 0..view.edges.len() {
            assert_eq!(
                rf.edge_down(e),
                rf.edge_down(view.reverse[e] as usize),
                "asymmetric link state at edge {e}"
            );
        }
        let healed = plan.compile(4, &view, &regions);
        assert_eq!(healed.down_count(), 0, "healed round must be clean");
    }

    #[test]
    fn flaps_cycle_and_stay_symmetric() {
        let (view, regions) = world(60, 5);
        let plan = FaultPlan {
            seed: 13,
            flaps: Some(LinkFlaps {
                fraction: 0.4,
                period: 5,
                down: 2,
            }),
            ..FaultPlan::default()
        };
        let mut downs = Vec::new();
        for round in 0..5 {
            let rf = plan.compile(round, &view, &regions);
            for e in 0..view.edges.len() {
                assert_eq!(rf.edge_down(e), rf.edge_down(view.reverse[e] as usize));
            }
            downs.push(rf.down_count());
        }
        assert!(downs.iter().any(|&d| d > 0), "some link must flap down");
        // Each flapping link is down exactly `down` of `period` rounds, so
        // the total down-count over a full period is 2/5 of members × 5.
        let total: usize = downs.iter().sum();
        assert!(total > 0);
        // The cycle repeats with the period.
        for round in 0..5 {
            assert_eq!(
                plan.compile(round, &view, &regions).down_count(),
                plan.compile(round + 5, &view, &regions).down_count()
            );
        }
    }

    #[test]
    fn regional_windows_slow_only_touching_links_and_multiply() {
        let (view, regions) = world(80, 6);
        let region = regions[0];
        let plan = FaultPlan {
            seed: 17,
            regional: vec![
                RegionalWindow {
                    region,
                    start: 0,
                    end: 10,
                    slow_factor: 2.0,
                },
                RegionalWindow {
                    region,
                    start: 5,
                    end: 10,
                    slow_factor: 3.0,
                },
            ],
            ..FaultPlan::default()
        };
        let single = plan.compile(1, &view, &regions);
        let stacked = plan.compile(6, &view, &regions);
        let bf1 = single.block(0);
        let bf2 = stacked.block(0);
        let n = view.offsets.len() - 1;
        for u in 0..n {
            for e in view.offsets[u]..view.offsets[u + 1] {
                let v = view.edges[e] as usize;
                let base = view.delay[e];
                let touching = regions[u] == region || regions[v] == region;
                if touching {
                    assert_eq!(bf1.scaled(e, base), base * 2.0);
                    assert_eq!(bf2.scaled(e, base), base * 6.0);
                } else {
                    assert_eq!(bf1.scaled(e, base).as_ms(), base.as_ms());
                    assert_eq!(bf2.scaled(e, base).as_ms(), base.as_ms());
                }
            }
        }
    }

    #[test]
    fn duplication_can_only_improve_on_a_single_copy() {
        let (view, regions) = world(40, 7);
        let base_rates = LinkFaultRates {
            drop_prob: 0.5,
            extra_delay: SimTime::from_ms(2.0),
            jitter: SimTime::from_ms(20.0),
            duplicate_prob: 0.0,
        };
        let mut dup_rates = base_rates;
        dup_rates.duplicate_prob = 1.0;
        let single = FaultPlan {
            seed: 23,
            base: base_rates,
            ..FaultPlan::default()
        };
        let dup = FaultPlan {
            seed: 23,
            base: dup_rates,
            ..FaultPlan::default()
        };
        let (rs, rd) = (
            single.compile(0, &view, &regions),
            dup.compile(0, &view, &regions),
        );
        let (bs, bd) = (rs.block(0), rd.block(0));
        for e in 0..view.edges.len() {
            let base = view.delay[e];
            match (bs.announce_leg(e, base), bd.announce_leg(e, base)) {
                (Some(s), Some(d)) => assert!(d <= s, "duplicate made edge {e} slower"),
                (Some(_), None) => panic!("duplication cannot lose a surviving copy"),
                _ => {}
            }
        }
    }

    #[test]
    fn validation_catches_bad_plans() {
        let bad_rate = FaultPlan {
            base: LinkFaultRates {
                drop_prob: 1.5,
                ..LinkFaultRates::NONE
            },
            ..FaultPlan::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_flap = FaultPlan {
            flaps: Some(LinkFlaps {
                fraction: 0.5,
                period: 3,
                down: 3,
            }),
            ..FaultPlan::default()
        };
        assert!(bad_flap.validate().is_err());
        let bad_regional = FaultPlan {
            regional: vec![RegionalWindow {
                region: Region::Europe,
                start: 0,
                end: 1,
                slow_factor: f64::NAN,
            }],
            ..FaultPlan::default()
        };
        assert!(bad_regional.validate().is_err());
        assert!(FaultPlan::inert(1).validate().is_ok());
    }

    #[test]
    fn a_full_plan_is_not_inert_and_survives_cloning() {
        let plan = FaultPlan {
            seed: 42,
            base: LinkFaultRates {
                drop_prob: 0.1,
                extra_delay: SimTime::from_ms(3.0),
                jitter: SimTime::from_ms(7.0),
                duplicate_prob: 0.05,
            },
            windows: vec![FaultWindow {
                start: 2,
                end: 9,
                rates: LinkFaultRates::NONE,
            }],
            flaps: Some(LinkFlaps {
                fraction: 0.2,
                period: 6,
                down: 2,
            }),
            partitions: vec![PartitionWindow {
                start: 3,
                heal: 5,
                fraction: 0.4,
            }],
            regional: vec![RegionalWindow {
                region: Region::Asia,
                start: 1,
                end: 4,
                slow_factor: 2.5,
            }],
        };
        assert!(!plan.is_inert());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.clone(), plan);
        // Window rates being inert does not make the plan inert (flaps,
        // partitions and regional windows still bite), but a plan whose
        // only content is inert windows is inert.
        let windows_only = FaultPlan {
            seed: 1,
            windows: plan.windows.clone(),
            ..FaultPlan::default()
        };
        assert!(windows_only.is_inert());
    }
}
