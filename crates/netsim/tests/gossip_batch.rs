//! Batched-vs-sequential bit-equality: a k-message
//! [`TopologyView::gossip_batch_into`] pass must produce delivery
//! matrices, arrivals and coverage times **bit-identical** to k
//! independent [`TopologyView::gossip_into`] calls, on both
//! [`QueueKind`]s — the correctness contract that lets the traffic layer
//! amortize per-message buffer resets without changing a single float.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use perigee_netsim::gossip::BatchMessage;
use perigee_netsim::{
    ConnectionLimits, GeoLatencyModel, GossipConfig, GossipScratch, NodeId, Population,
    PopulationBuilder, QueueKind, SimTime, Topology, TopologyView, TrafficConfig,
};

fn random_world(n: usize, seed: u64) -> (Population, GeoLatencyModel, Topology, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
    let lat = GeoLatencyModel::new(&pop, seed);
    let mut topo = Topology::new(n, ConnectionLimits::paper_default());
    for i in 0..n as u32 {
        let _ = topo.connect(NodeId::new(i), NodeId::new((i + 1) % n as u32));
    }
    for _ in 0..3 * n {
        let u = NodeId::new(rng.gen_range(0..n as u32));
        let v = NodeId::new(rng.gen_range(0..n as u32));
        let _ = topo.connect(u, v);
    }
    (pop, lat, topo, rng)
}

/// Mixed-policy batch over `n` nodes, deterministic in `rng`.
fn mixed_batch(n: u32, k: usize, rng: &mut StdRng) -> Vec<BatchMessage> {
    let configs = [
        GossipConfig::flood(),
        GossipConfig::inv_getdata(0.0005),
        GossipConfig::push_pull(0.002, 3),
        GossipConfig::inv_getdata(0.0),
    ];
    (0..k)
        .map(|i| BatchMessage {
            source: NodeId::new(rng.gen_range(0..n)),
            config: configs[i % configs.len()],
        })
        .collect()
}

/// Runs `batch` once batched and once as k sequential single passes on
/// `kind`, asserting every per-message observable is bit-identical.
fn assert_batch_equals_sequential(view: &TopologyView, batch: &[BatchMessage], kind: QueueKind) {
    let m = view.directed_edge_count();
    let mut batched = GossipScratch::with_queue(kind);
    let mut single = GossipScratch::with_queue(kind);
    let mut visited = 0usize;
    view.gossip_batch_into(batch, &mut batched, |i, s| {
        visited += 1;
        let msg = &batch[i];
        view.gossip_into(msg.source, &msg.config, &mut single);
        assert_eq!(s.source(), msg.source);
        for v in 0..view.len() as u32 {
            let v = NodeId::new(v);
            assert_eq!(
                s.batch_arrival(v).as_ms().to_bits(),
                single.arrival(v).as_ms().to_bits(),
                "message {i} arrival at {v} ({kind:?})"
            );
        }
        for e in 0..m {
            assert_eq!(
                s.delivery(e).as_ms().to_bits(),
                single.delivery(e).as_ms().to_bits(),
                "message {i} delivery matrix entry {e} ({kind:?})"
            );
        }
        assert_eq!(s.batch_reached(), single.reached());
        let fractions = [0.5, 0.9, 1.0];
        let mut via_batch = [SimTime::ZERO; 3];
        s.batch_coverage_times_into(view, &fractions, &mut via_batch);
        let mut via_single = [SimTime::ZERO; 3];
        single.coverage_times_into(view, &fractions, &mut via_single);
        assert_eq!(via_batch, via_single, "message {i} coverage ({kind:?})");
    });
    assert_eq!(visited, batch.len());
}

#[test]
fn batch_is_bit_identical_to_sequential_on_both_queue_kinds() {
    for seed in 0..3 {
        let (pop, lat, topo, mut rng) = random_world(60, seed + 40);
        let view = TopologyView::new(&topo, &lat, &pop);
        let batch = mixed_batch(60, 24, &mut rng);
        for kind in [QueueKind::Calendar, QueueKind::BinaryHeap] {
            assert_batch_equals_sequential(&view, &batch, kind);
        }
    }
}

#[test]
fn repeated_batches_reuse_the_scratch_without_drift() {
    let (pop, lat, topo, mut rng) = random_world(50, 7);
    let view = TopologyView::new(&topo, &lat, &pop);
    // Three consecutive batches through ONE scratch (epochs keep
    // climbing) must equal fresh-scratch runs of the same batches.
    let mut carried = GossipScratch::new();
    for round in 0..3 {
        let batch = mixed_batch(50, 16, &mut rng);
        let mut fresh = GossipScratch::new();
        let mut expect: Vec<Vec<SimTime>> = Vec::new();
        view.gossip_batch_into(&batch, &mut fresh, |_, s| {
            expect.push((0..50).map(|v| s.batch_arrival(NodeId::new(v))).collect());
        });
        let mut got: Vec<Vec<SimTime>> = Vec::new();
        view.gossip_batch_into(&batch, &mut carried, |_, s| {
            got.push((0..50).map(|v| s.batch_arrival(NodeId::new(v))).collect());
        });
        assert_eq!(expect, got, "round {round}");
    }
}

#[test]
fn traffic_stream_batches_match_sequential_passes() {
    let (pop, lat, topo, _) = random_world(80, 11);
    let view = TopologyView::new(&topo, &lat, &pop);
    let traffic = TrafficConfig::paper_stream(31);
    let messages = traffic.messages_for_round(2, &pop);
    assert!(messages.len() > 400, "paper stream should be dense");
    let mut batch = Vec::new();
    traffic.batch_for(&messages, &mut batch);
    // Sample-check the full stream on the calendar queue (the whole
    // stream on both kinds is covered by the smaller worlds above).
    assert_batch_equals_sequential(&view, &batch[..200], QueueKind::Calendar);
}
