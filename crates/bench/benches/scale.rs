//! The 10k-node scale benchmarks — the workload the flat observation
//! store, split-borrow parallel UCB and incremental CSR patching were
//! built for.
//!
//! Two criterion groups:
//!
//! * `scale/*` — 10 000 nodes: one analytic flood, one INV/GETDATA
//!   message-level block, and a full 100-block analytic observation round
//!   through [`PerigeeEngine::observe_round`] (rayon fan-out, flat `f32`
//!   store). The former per-node `f64` row layout held
//!   `2 × blocks × directed-edges × 8 B` per round at this scale; the
//!   flat store holds half that and appends chunks by `memcpy`.
//! * `scale_smoke/*` — the same shapes at 1 000 nodes and 10 blocks,
//!   cheap enough for CI to run on every push so the scale path cannot
//!   rot.
//!
//! After the groups (when run unfiltered or with a `scale-report`
//! filter), the bench hand-times the 10k round and the 1k single-thread
//! gossip round (the `BENCH_gossip.json` trajectory quantity) and writes
//! the results to `BENCH_scale.json` at the workspace root.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use perigee_bench::{bench_json, median, section_enabled, MemoryFootprint};
use perigee_core::{ObservationBackend, PerigeeConfig, PerigeeEngine, ScoringMethod};
use perigee_netsim::{
    BroadcastScratch, ChurnProcess, ConnectionLimits, GeoLatencyModel, GossipConfig, GossipScratch,
    MinerSampler, NodeId, Population, PopulationBuilder, Topology, TopologyView,
};
use perigee_topology::{RandomBuilder, TopologyBuilder};

const SCALE_NODES: usize = 10_000;
const SCALE_BLOCKS: usize = 100;
const SMOKE_NODES: usize = 1_000;
const SMOKE_BLOCKS: usize = 10;
const HUGE_NODES: usize = 100_000;
const HUGE_BLOCKS: usize = 100;

fn world(n: usize, seed: u64) -> (Population, GeoLatencyModel, Topology) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
    let lat = GeoLatencyModel::new(&pop, seed);
    let topo = RandomBuilder::new().build(&pop, &lat, ConnectionLimits::paper_default(), &mut rng);
    (pop, lat, topo)
}

fn engine_for(
    pop: &Population,
    lat: &GeoLatencyModel,
    topo: &Topology,
    blocks: usize,
) -> PerigeeEngine<GeoLatencyModel> {
    engine_with_backend(pop, lat, topo, blocks, ObservationBackend::Dense)
}

fn engine_with_backend(
    pop: &Population,
    lat: &GeoLatencyModel,
    topo: &Topology,
    blocks: usize,
    backend: ObservationBackend,
) -> PerigeeEngine<GeoLatencyModel> {
    let mut config = PerigeeConfig::paper_default(ScoringMethod::Subset);
    config.blocks_per_round = blocks;
    config.observation_backend = backend;
    PerigeeEngine::new(
        pop.clone(),
        lat.clone(),
        topo.clone(),
        ScoringMethod::Subset,
        config,
    )
    .expect("bench configuration is valid")
}

fn bench_scale(c: &mut Criterion) {
    if !section_enabled("scale/") && !section_enabled("scale-report") {
        return;
    }
    let (pop, lat, topo) = world(SCALE_NODES, 1);
    let view = TopologyView::new(&topo, &lat, &pop);
    let engine = engine_for(&pop, &lat, &topo, SCALE_BLOCKS);
    let mut rng = StdRng::seed_from_u64(2);
    let miners = MinerSampler::new(&pop).sample_round(SCALE_BLOCKS, &mut rng);

    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("flood_10000", |b| {
        let mut scratch = BroadcastScratch::with_capacity(SCALE_NODES);
        b.iter(|| view.broadcast_into(NodeId::new(0), &mut scratch));
    });
    group.bench_function("inv_getdata_10000", |b| {
        let cfg = GossipConfig::inv_getdata(0.0);
        let mut scratch = GossipScratch::with_capacity(view.len(), view.directed_edge_count());
        b.iter(|| view.gossip_into(NodeId::new(0), &cfg, &mut scratch));
    });
    group.bench_function("analytic_round_10000x100", |b| {
        b.iter(|| engine.observe_round_with(&view, &miners));
    });
    group.finish();

    if !section_enabled("scale-report") {
        return;
    }

    // The 10k × 100-block analytic round (rayon fan-out, flat f32 store).
    let mut round = [0.0f64; 3];
    for slot in &mut round {
        let start = Instant::now();
        criterion::black_box(engine.observe_round_with(&view, &miners));
        *slot = start.elapsed().as_secs_f64();
    }
    let round_s = median(&mut round);
    let store = engine.observe_round_with(&view, &miners);
    let matrix_mb = store.observations().matrix_bytes() as f64 / (1024.0 * 1024.0);
    let edges = store.observations().directed_edge_count();
    println!(
        "scale: 10k-node round {round_s:.3} s ({:.1} blocks/s, {} threads), \
         observation matrix {matrix_mb:.1} MiB over {edges} directed edges \
         (f32; the former f64 rows held {:.1} MiB)",
        SCALE_BLOCKS as f64 / round_s,
        rayon::current_num_threads(),
        matrix_mb * 2.0,
    );

    // The BENCH_gossip.json trajectory quantity — 1k nodes, 100 blocks,
    // single thread through the pooled gossip engine — so the scale
    // baseline records that 1k round throughput did not regress.
    let (pop1k, lat1k, topo1k) = world(SMOKE_NODES, 5);
    let view1k = TopologyView::new(&topo1k, &lat1k, &pop1k);
    let mut rng = StdRng::seed_from_u64(6);
    let miners1k = MinerSampler::new(&pop1k).sample_round(100, &mut rng);
    let time_gossip = |cfg: &GossipConfig| {
        let mut scratch = GossipScratch::with_capacity(view1k.len(), view1k.directed_edge_count());
        let mut samples = [0.0f64; 3];
        for slot in &mut samples {
            let start = Instant::now();
            for &miner in &miners1k {
                view1k.gossip_into(miner, cfg, &mut scratch);
                criterion::black_box(scratch.arrivals());
            }
            *slot = start.elapsed().as_secs_f64();
        }
        median(&mut samples)
    };
    let flood_1k = time_gossip(&GossipConfig::flood());
    let inv_1k = time_gossip(&GossipConfig::inv_getdata(0.0));
    println!(
        "scale: 1k-node 100-block gossip round (1 thread): flood {flood_1k:.4} s, \
         inv {inv_1k:.4} s (BENCH_gossip.json baseline: 0.0444 / 0.0405)"
    );

    // Sketch backend at the same 10k × 100 shape: constant-space per-edge
    // P² sketches instead of the raw sample matrix. The store must be
    // ≥ 4× smaller than dense (the scale acceptance gate), and — the
    // sublinearity claim — its size must not depend on blocks-per-round.
    let sketch_engine =
        engine_with_backend(&pop, &lat, &topo, SCALE_BLOCKS, ObservationBackend::Sketch);
    let mut sk = [0.0f64; 3];
    for slot in &mut sk {
        let start = Instant::now();
        criterion::black_box(sketch_engine.observe_round_with(&view, &miners));
        *slot = start.elapsed().as_secs_f64();
    }
    let sketch_s = median(&mut sk);
    let sketch_store = sketch_engine.observe_round_with(&view, &miners);
    let sketch_bytes = sketch_store.observations().matrix_bytes();
    let dense_bytes = store.observations().matrix_bytes();
    assert!(
        sketch_bytes * 4 <= dense_bytes,
        "sketch store must be >= 4x smaller than dense at 10k x 100 \
         (sketch {sketch_bytes} B, dense {dense_bytes} B)"
    );
    println!(
        "scale: sketch round {sketch_s:.3} s, store {:.1} MiB vs dense {matrix_mb:.1} MiB \
         ({:.1}x smaller, {} B/edge independent of blocks-per-round)",
        sketch_bytes as f64 / (1024.0 * 1024.0),
        dense_bytes as f64 / sketch_bytes as f64,
        sketch_bytes / edges,
    );

    // The 100k-node round — the scale this PR makes routine: sketch
    // observations (dense would hold ~640 MiB at 100 blocks) over a
    // sharded analytic flood. One warm-up-free hand-timed triple.
    let (pop100k, lat100k, topo100k) = world(HUGE_NODES, 9);
    let view100k = TopologyView::new(&topo100k, &lat100k, &pop100k);
    let mut engine100k = engine_with_backend(
        &pop100k,
        &lat100k,
        &topo100k,
        HUGE_BLOCKS,
        ObservationBackend::Sketch,
    );
    engine100k.set_shards(rayon::current_num_threads());
    let mut rng = StdRng::seed_from_u64(10);
    let miners100k = MinerSampler::new(&pop100k).sample_round(HUGE_BLOCKS, &mut rng);
    let mut huge = [0.0f64; 3];
    for slot in &mut huge {
        let start = Instant::now();
        criterion::black_box(engine100k.observe_round_with(&view100k, &miners100k));
        *slot = start.elapsed().as_secs_f64();
    }
    let huge_s = median(&mut huge);
    let huge_store = engine100k.observe_round_with(&view100k, &miners100k);
    let huge_edges = huge_store.observations().directed_edge_count();
    let huge_bytes = huge_store.observations().matrix_bytes();
    println!(
        "scale: 100k-node {HUGE_BLOCKS}-block round {huge_s:.3} s \
         ({:.1} blocks/s, {} shards), sketch store {:.1} MiB over {huge_edges} edges \
         (dense would hold {:.1} MiB)",
        HUGE_BLOCKS as f64 / huge_s,
        engine100k.shards(),
        huge_bytes as f64 / (1024.0 * 1024.0),
        (huge_edges * HUGE_BLOCKS * 4) as f64 / (1024.0 * 1024.0),
    );

    let fields = format!(
        "  \"nodes\": {SCALE_NODES},\n  \
         \"blocks_per_round\": {SCALE_BLOCKS},\n  \
         \"analytic_round\": {{ \"seconds\": {round_s:.4}, \"blocks_per_s\": {:.1}, \
         \"threads\": {} }},\n  \
         \"observation_store\": {{ \"directed_edges\": {edges}, \"matrix_mib_f32\": {matrix_mb:.1}, \
         \"former_f64_mib\": {:.1} }},\n  \
         \"sketch_backend\": {{ \"seconds\": {sketch_s:.4}, \"store_bytes\": {sketch_bytes}, \
         \"bytes_per_edge\": {:.1}, \"dense_over_sketch\": {:.1} }},\n  \
         \"round_100k\": {{ \"nodes\": {HUGE_NODES}, \"blocks\": {HUGE_BLOCKS}, \
         \"seconds\": {huge_s:.4}, \"blocks_per_s\": {:.1}, \"shards\": {}, \
         \"sketch_store_bytes\": {huge_bytes}, \"directed_edges\": {huge_edges} }},\n  \
         \"gossip_1k_100blocks_1thread\": {{ \"flood_s\": {flood_1k:.4}, \"inv_s\": {inv_1k:.4} }}\n",
        SCALE_BLOCKS as f64 / round_s,
        rayon::current_num_threads(),
        matrix_mb * 2.0,
        sketch_bytes as f64 / edges as f64,
        dense_bytes as f64 / sketch_bytes as f64,
        HUGE_BLOCKS as f64 / huge_s,
        engine100k.shards(),
    );
    let json = bench_json(
        "scale",
        &format!("nodes={SCALE_NODES},blocks={SCALE_BLOCKS},huge={HUGE_NODES}x{HUGE_BLOCKS}"),
        MemoryFootprint::per_edge(sketch_bytes, edges),
        &fields,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

fn bench_scale_smoke(c: &mut Criterion) {
    if !section_enabled("scale_smoke/") {
        return;
    }
    let (pop, lat, topo) = world(SMOKE_NODES, 3);
    let view = TopologyView::new(&topo, &lat, &pop);
    let engine = engine_for(&pop, &lat, &topo, SMOKE_BLOCKS);
    let mut rng = StdRng::seed_from_u64(4);
    let miners = MinerSampler::new(&pop).sample_round(SMOKE_BLOCKS, &mut rng);

    let mut group = c.benchmark_group("scale_smoke");
    group.sample_size(10);
    group.bench_function("flood_1000", |b| {
        let mut scratch = BroadcastScratch::with_capacity(SMOKE_NODES);
        b.iter(|| view.broadcast_into(NodeId::new(0), &mut scratch));
    });
    group.bench_function("inv_getdata_1000", |b| {
        let cfg = GossipConfig::inv_getdata(0.0);
        let mut scratch = GossipScratch::with_capacity(view.len(), view.directed_edge_count());
        b.iter(|| view.gossip_into(NodeId::new(0), &cfg, &mut scratch));
    });
    group.bench_function("analytic_round_1000x10", |b| {
        b.iter(|| engine.observe_round_with(&view, &miners));
    });
    group.finish();

    // The smoke pass also cross-checks the flat store against the legacy
    // recording path once, so CI exercises the equivalence, not just the
    // speed.
    let round = engine.observe_round_with(&view, &miners);
    let mut legacy = perigee_core::ObservationCollector::new(&topo);
    for &miner in &miners {
        legacy.record(&perigee_netsim::broadcast(&topo, &lat, &pop, miner), &lat);
    }
    assert_eq!(
        round.observations().as_dense().unwrap(),
        &legacy.finish(),
        "flat store diverged from the legacy recording path"
    );
}

/// CI's gate on this PR's three load-bearing claims, at 300 nodes:
/// sharded propagation is bit-identical to unsharded on both backends,
/// the sketch store is ≥ 4× smaller than dense at 100 blocks with
/// bit-identical λ-curves, and free-list compaction under churn leaves
/// the carried view exactly equal to a fresh build.
fn bench_shard_smoke(c: &mut Criterion) {
    let _ = c;
    if !section_enabled("shard_smoke") {
        return;
    }
    const NODES: usize = 300;

    // 1. Shard-count invariance: every shard count must reproduce the
    //    single-shard round bit for bit, dense and sketch alike.
    for backend in [ObservationBackend::Dense, ObservationBackend::Sketch] {
        let (pop, lat, topo) = world(NODES, 11);
        let view = TopologyView::new(&topo, &lat, &pop);
        let mut rng = StdRng::seed_from_u64(12);
        let miners = MinerSampler::new(&pop).sample_round(SMOKE_BLOCKS, &mut rng);
        let mut reference = engine_with_backend(&pop, &lat, &topo, SMOKE_BLOCKS, backend);
        reference.set_shards(1);
        let want = reference.observe_round_with(&view, &miners);
        for shards in [2, 8] {
            let mut sharded = engine_with_backend(&pop, &lat, &topo, SMOKE_BLOCKS, backend);
            sharded.set_shards(shards);
            let got = sharded.observe_round_with(&view, &miners);
            assert_eq!(
                got.observations(),
                want.observations(),
                "{backend:?} store diverged at {shards} shards"
            );
            assert_eq!(got.lambda90_ms(), want.lambda90_ms());
            assert_eq!(got.lambda50_ms(), want.lambda50_ms());
        }
    }

    // 2. The sketch-vs-dense ablation gate: at 100 blocks the sketch
    //    store must be ≥ 4× smaller, and the λ-curves — computed from
    //    the floods, not the store — must not move at all.
    let (pop, lat, topo) = world(NODES, 13);
    let view = TopologyView::new(&topo, &lat, &pop);
    let mut rng = StdRng::seed_from_u64(14);
    let miners = MinerSampler::new(&pop).sample_round(100, &mut rng);
    let dense = engine_for(&pop, &lat, &topo, 100).observe_round_with(&view, &miners);
    let sketch = engine_with_backend(&pop, &lat, &topo, 100, ObservationBackend::Sketch)
        .observe_round_with(&view, &miners);
    let dense_bytes = dense.observations().matrix_bytes();
    let sketch_bytes = sketch.observations().matrix_bytes();
    assert!(
        sketch_bytes * 4 <= dense_bytes,
        "sketch store {sketch_bytes} B must be >= 4x smaller than dense {dense_bytes} B"
    );
    assert_eq!(dense.lambda90_ms(), sketch.lambda90_ms());
    assert_eq!(dense.lambda50_ms(), sketch.lambda50_ms());

    // 3. Compaction under churn: retire slots for a few rounds, compact,
    //    and the carried view must still equal a fresh build — then keep
    //    running on the renumbered world.
    let (pop, lat, topo) = world(NODES, 15);
    let mut engine =
        engine_with_backend(&pop, &lat, &topo, SMOKE_BLOCKS, ObservationBackend::Sketch);
    let mut rng = StdRng::seed_from_u64(16);
    engine.set_churn(ChurnProcess::steady_state(NODES, 0.05, 17));
    let mut departed = 0;
    for _ in 0..6 {
        departed += engine.run_round(&mut rng).departed;
    }
    assert!(departed > 0, "churn must retire slots before the compact");
    let reclaimed = engine.compact().expect("retired slots to reclaim");
    assert!(reclaimed > 0);
    engine.assert_view_consistency();
    for _ in 0..3 {
        engine.run_round(&mut rng);
    }
    engine.assert_view_consistency();

    println!(
        "shard_smoke: shard invariance (dense+sketch), sketch {sketch_bytes} B vs dense \
         {dense_bytes} B ({:.1}x), compaction reclaimed {reclaimed} -> all gates passed",
        dense_bytes as f64 / sketch_bytes as f64
    );
}

criterion_group!(benches, bench_scale, bench_scale_smoke, bench_shard_smoke);
criterion_main!(benches);
