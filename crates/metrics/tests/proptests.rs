//! Property-based tests of the measurement utilities.

use proptest::prelude::*;

use perigee_metrics::{mean, percentile, std_dev, DelayCurve, Histogram, Summary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Percentiles of a constant sample equal that constant.
    #[test]
    fn percentile_of_constant_sample(c in -1e9f64..1e9, n in 1usize..50, p in 0.0f64..100.0) {
        let v = vec![c; n];
        prop_assert_eq!(percentile(&v, p), Some(c));
    }

    /// Percentile is invariant under permutation.
    #[test]
    fn percentile_is_permutation_invariant(
        mut values in proptest::collection::vec(-1e6f64..1e6, 2..60),
        p in 0.0f64..100.0,
    ) {
        let a = percentile(&values, p);
        values.reverse();
        let b = percentile(&values, p);
        prop_assert_eq!(a, b);
    }

    /// Percentile scales linearly with the data.
    #[test]
    fn percentile_is_scale_equivariant(
        values in proptest::collection::vec(0.0f64..1e6, 1..50),
        p in 0.0f64..100.0,
        k in 0.1f64..10.0,
    ) {
        let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
        let a = percentile(&values, p).unwrap();
        let b = percentile(&scaled, p).unwrap();
        prop_assert!((b - a * k).abs() <= 1e-6 * (1.0 + b.abs()));
    }

    /// Mean lies within [min, max]; std_dev is non-negative.
    #[test]
    fn mean_and_std_bounds(values in proptest::collection::vec(-1e6f64..1e6, 2..60)) {
        let m = mean(&values).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        prop_assert!(std_dev(&values).unwrap() >= 0.0);
    }

    /// Summary fields are totally ordered min ≤ p25 ≤ median ≤ p75 ≤ p90 ≤ max.
    #[test]
    fn summary_is_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..60)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median);
        prop_assert!(s.median <= s.p75);
        prop_assert!(s.p75 <= s.p90);
        prop_assert!(s.p90 <= s.max);
    }

    /// Histograms conserve sample counts and fractions sum to one.
    #[test]
    fn histogram_conserves_mass(
        values in proptest::collection::vec(-50.0f64..150.0, 1..200),
        bins in 1usize..30,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        h.extend(values.iter().copied());
        prop_assert_eq!(h.count(), values.len() as u64);
        let total: f64 = h.fractions().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(h.fraction_below(100.0) <= 1.0);
    }

    /// Pointwise curve means commute with constant shifts.
    #[test]
    fn curve_mean_shift_equivariance(
        a in proptest::collection::vec(0.0f64..1e5, 1..40),
        shift in 0.0f64..1e4,
    ) {
        let shifted: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let c1 = DelayCurve::from_values(a.clone());
        let c2 = DelayCurve::from_values(shifted);
        let m = DelayCurve::pointwise_mean(&[c1.clone(), c2]);
        for i in 0..c1.len() {
            prop_assert!((m.value_at(i) - (c1.value_at(i) + shift / 2.0)).abs() < 1e-6);
        }
    }

    /// improvement_over is antisymmetric-ish: if a beats b, b does not beat a.
    #[test]
    fn improvement_direction_is_consistent(
        (a, b) in (3usize..40).prop_flat_map(|n| (
            proptest::collection::vec(1.0f64..1e5, n),
            proptest::collection::vec(1.0f64..1e5, n),
        )),
    ) {
        let ca = DelayCurve::from_values(a);
        let cb = DelayCurve::from_values(b);
        let ab = ca.improvement_over(&cb);
        let ba = cb.improvement_over(&ca);
        if ab > 1e-9 {
            prop_assert!(ba < 1e-9);
        }
    }
}
