//! Compact per-edge streaming sketches for observation scoring.
//!
//! [`P2Quantile`](crate::P2Quantile) is the right tool for a handful of
//! long-lived trackers (λ-curves), but an observation store carries one
//! sketch *per directed edge* — 160k at 10k nodes, 1.6M at 100k — so
//! every byte of per-sketch state is multiplied by the edge count.
//! [`EdgeSketch`] is the same P² marker update shrunk to 48 bytes:
//!
//! * marker heights as `f32` (observation times are recorded as `f32`
//!   anyway, so no information is lost at ingest);
//! * marker positions as `u32` — P² positions are integral by
//!   construction (they move by exactly ±1);
//! * no per-sketch copy of the desired positions or their increments:
//!   both are pure functions of the tracked percentile and the finite
//!   count, so they live once per store in [`SketchParams`] and are
//!   re-derived on every update;
//! * the five height slots double as the seed buffer before the markers
//!   initialize, so small streams (≤ 5 finite samples) are *exact* —
//!   the same guarantee [`P2Quantile`](crate::P2Quantile) gives.
//!
//! Infinite observations (the `t = ∞` "never delivered" convention)
//! are counted out-of-band exactly like
//! [`P2Quantile`](crate::P2Quantile): the estimate is `+∞` iff the
//! requested rank lands in the infinite tail.
//!
//! The update is deterministic: a given sample sequence produces a
//! bit-identical sketch on any thread, and the internal marker math runs
//! in `f64` (rounding to `f32` only when a height is stored) so the
//! estimate degrades gracefully, not chaotically, relative to the exact
//! percentile of the same stream.
//!
//! [`MultiQuantile`] bundles several [`P2Quantile`] trackers over one
//! stream — sized for the production-Kaspa lexicographic score tuple
//! (p90, p95, p97.5, p100), see [`MultiQuantile::kaspa_tuple`].

use crate::percentile::percentile_mut;
use crate::P2Quantile;

/// Per-store parameters shared by every [`EdgeSketch`] tracking the same
/// percentile: the initial desired marker positions and their
/// per-observation increments. Keeping them out of the per-edge state is
/// what gets the sketch to 48 bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchParams {
    /// Requested percentile in `[0, 100]`.
    p: f64,
    /// Desired marker positions after the five seed samples.
    initial: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
}

impl SketchParams {
    /// Parameters for sketches of the `p`-th percentile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let f = p / 100.0;
        SketchParams {
            p,
            initial: [1.0, 1.0 + 2.0 * f, 1.0 + 4.0 * f, 3.0 + 2.0 * f, 5.0],
            increments: [0.0, f / 2.0, f, (1.0 + f) / 2.0, 1.0],
        }
    }

    /// The percentile these parameters track.
    #[inline]
    pub fn percentile(&self) -> f64 {
        self.p
    }

    /// Desired position of marker `i` after `finite` finite samples.
    #[inline]
    fn desired(&self, i: usize, finite: u32) -> f64 {
        self.initial[i] + (finite as f64 - 5.0) * self.increments[i]
    }
}

/// A 48-byte streaming P² sketch of one percentile of one edge's
/// observation stream. All methods that advance or read the marker
/// state take the store's shared [`SketchParams`]; callers must pass
/// the same params the sketch was fed with.
///
/// # Examples
///
/// ```
/// use perigee_metrics::{EdgeSketch, SketchParams};
///
/// let params = SketchParams::new(90.0);
/// let mut s = EdgeSketch::new();
/// for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
///     s.observe(x, &params);
/// }
/// assert_eq!(s.estimate(&params), Some(4.6)); // exact while ≤ 5 samples
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeSketch {
    /// Marker heights `q₀..q₄`; the seed buffer (in arrival order)
    /// until five finite samples have arrived.
    heights: [f32; 5],
    /// Marker positions `n₀..n₄` (1-based ranks, always integral).
    positions: [u32; 5],
    /// Finite observations so far.
    finite: u32,
    /// Infinite observations so far (kept out of the marker state).
    infinite: u32,
}

impl EdgeSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        EdgeSketch {
            heights: [0.0; 5],
            positions: [1, 2, 3, 4, 5],
            finite: 0,
            infinite: 0,
        }
    }

    /// Total observations so far (finite and infinite).
    #[inline]
    pub fn count(&self) -> usize {
        self.finite as usize + self.infinite as usize
    }

    /// Finite observations so far.
    #[inline]
    pub fn finite(&self) -> usize {
        self.finite as usize
    }

    /// Infinite observations so far.
    #[inline]
    pub fn infinite(&self) -> usize {
        self.infinite as usize
    }

    /// Feeds one observation. Infinities are legal (the `t = ∞`
    /// convention) and tracked out-of-band.
    ///
    /// # Panics
    ///
    /// Panics on `NaN`, like [`percentile`](crate::percentile).
    pub fn observe(&mut self, x: f32, params: &SketchParams) {
        assert!(!x.is_nan(), "quantile input must not contain NaN");
        if x.is_infinite() {
            self.infinite += 1;
            return;
        }
        self.finite += 1;
        if self.finite <= 5 {
            self.heights[self.finite as usize - 1] = x;
            if self.finite == 5 {
                self.heights.sort_unstable_by(f32::total_cmp);
            }
            return;
        }

        // Locate the cell k with q[k] ≤ x < q[k+1], clamping the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1;
        }

        // Nudge the three interior markers toward their desired ranks.
        // The marker math runs in f64 (heights round to f32 on store).
        for i in 1..4 {
            let d = params.desired(i, self.finite) - self.positions[i] as f64;
            let above = self.positions[i + 1] as f64 - self.positions[i] as f64;
            let below = self.positions[i - 1] as f64 - self.positions[i] as f64;
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d) as f32;
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d) as f32
                    };
                if d > 0.0 {
                    self.positions[i] += 1;
                } else {
                    self.positions[i] -= 1;
                }
            }
        }
    }

    /// The piecewise-parabolic (P²) height prediction for marker `i`
    /// moved by `d ∈ {−1, +1}` ranks.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = |j: usize| self.heights[j] as f64;
        let n = |j: usize| self.positions[j] as f64;
        q(i) + d / (n(i + 1) - n(i - 1))
            * ((n(i) - n(i - 1) + d) * (q(i + 1) - q(i)) / (n(i + 1) - n(i))
                + (n(i + 1) - n(i) - d) * (q(i) - q(i - 1)) / (n(i) - n(i - 1)))
    }

    /// The linear fallback used when the parabolic prediction would break
    /// the marker-height monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i] as f64
            + d * (self.heights[j] as f64 - self.heights[i] as f64)
                / (self.positions[j] as f64 - self.positions[i] as f64)
    }

    /// The current estimate of the tracked percentile, or `None` before
    /// the first observation. Exact (matching
    /// [`percentile`](crate::percentile) up to the `f32` sample
    /// representation) while at most five finite samples have arrived;
    /// `+∞` when the requested rank lands in the infinite tail.
    pub fn estimate(&self, params: &SketchParams) -> Option<f64> {
        let total = self.finite as usize + self.infinite as usize;
        if total == 0 {
            return None;
        }
        if self.infinite > 0 {
            let rank = params.p / 100.0 * (total - 1) as f64;
            if rank > self.finite as f64 - 1.0 {
                return Some(f64::INFINITY);
            }
        }
        if self.finite <= 5 {
            let mut buf: Vec<f64> = self.heights[..self.finite as usize]
                .iter()
                .map(|&h| h as f64)
                .collect();
            return percentile_mut(&mut buf, params.p);
        }
        Some(self.heights[2] as f64)
    }

    /// Like [`EdgeSketch::estimate`] but maps the empty stream to `+∞` —
    /// the scoring convention of
    /// [`percentile_or_inf`](crate::percentile_or_inf).
    pub fn estimate_or_inf(&self, params: &SketchParams) -> f64 {
        self.estimate(params).unwrap_or(f64::INFINITY)
    }

    /// The sketch's representative finite samples: the raw seed values
    /// (exact) while at most five finite samples have arrived, the five
    /// marker heights afterwards. Consumers that need a sample *stream*
    /// back out of the sketch (UCB's history absorption) read these plus
    /// [`EdgeSketch::infinite`] `∞` entries.
    #[inline]
    pub fn representatives(&self) -> &[f32] {
        let k = (self.finite as usize).min(5);
        &self.heights[..k]
    }
}

/// Several [`P2Quantile`] trackers over one observation stream — the
/// multi-percentile variant backing lexicographic score tuples.
///
/// # Examples
///
/// ```
/// use perigee_metrics::MultiQuantile;
///
/// let mut m = MultiQuantile::kaspa_tuple();
/// for x in 0..1000 {
///     m.observe(f64::from(x % 100));
/// }
/// let t = m.estimates_or_inf();
/// assert_eq!(t.len(), 4);
/// assert!(t.windows(2).all(|w| w[0] <= w[1]), "tuple is sorted: {t:?}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiQuantile {
    trackers: Vec<P2Quantile>,
}

impl MultiQuantile {
    /// Trackers for each requested percentile, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any percentile is outside `[0, 100]`.
    pub fn new(percentiles: &[f64]) -> Self {
        MultiQuantile {
            trackers: percentiles.iter().map(|&p| P2Quantile::new(p)).collect(),
        }
    }

    /// The production-Kaspa lexicographic score tuple: (p90, p95,
    /// p97.5, p100), compared element-wise (see ROADMAP's `KaspaScore`
    /// item).
    pub fn kaspa_tuple() -> Self {
        Self::new(&[90.0, 95.0, 97.5, 100.0])
    }

    /// The tracked percentiles, in tuple order.
    pub fn percentiles(&self) -> Vec<f64> {
        self.trackers.iter().map(|t| t.percentile()).collect()
    }

    /// Feeds one observation to every tracker.
    ///
    /// # Panics
    ///
    /// Panics on `NaN`.
    pub fn observe(&mut self, x: f64) {
        for t in &mut self.trackers {
            t.observe(x);
        }
    }

    /// Total observations so far.
    pub fn count(&self) -> usize {
        self.trackers.first().map_or(0, |t| t.count())
    }

    /// The current estimate tuple, mapping the empty stream to `+∞`
    /// per element — ready for lexicographic comparison.
    pub fn estimates_or_inf(&self) -> Vec<f64> {
        self.trackers.iter().map(|t| t.estimate_or_inf()).collect()
    }
}

mod codec {
    //! Checkpoint codec impls (see `serde::bin`).

    use serde::bin::{Decode, DecodeError, Encode, Reader};

    use super::{EdgeSketch, MultiQuantile};
    use crate::P2Quantile;

    impl Encode for EdgeSketch {
        fn encode(&self, out: &mut Vec<u8>) {
            self.heights.encode(out);
            self.positions.encode(out);
            self.finite.encode(out);
            self.infinite.encode(out);
        }
    }

    impl Decode for EdgeSketch {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let s = EdgeSketch {
                heights: <[f32; 5]>::decode(r)?,
                positions: <[u32; 5]>::decode(r)?,
                finite: u32::decode(r)?,
                infinite: u32::decode(r)?,
            };
            if s.heights.iter().any(|h| h.is_nan()) {
                return Err(DecodeError::new("edge sketch height is NaN"));
            }
            Ok(s)
        }
    }

    impl Encode for MultiQuantile {
        fn encode(&self, out: &mut Vec<u8>) {
            self.trackers.encode(out);
        }
    }

    impl Decode for MultiQuantile {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(MultiQuantile {
                trackers: Vec::<P2Quantile>::decode(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::percentile;

    /// Deterministic pseudo-random stream (splitmix64 over the index).
    fn noise(i: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5A5);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    }

    #[test]
    fn sketch_is_48_bytes() {
        assert_eq!(std::mem::size_of::<EdgeSketch>(), 48);
    }

    #[test]
    fn empty_and_small_streams_are_exact() {
        let params = SketchParams::new(90.0);
        let mut s = EdgeSketch::new();
        assert_eq!(s.estimate(&params), None);
        assert_eq!(s.estimate_or_inf(&params), f64::INFINITY);
        let values = [7.0f32, 3.0, 9.0, 1.0, 5.0];
        for (i, &x) in values.iter().enumerate() {
            s.observe(x, &params);
            let exact: Vec<f64> = values[..=i].iter().map(|&v| v as f64).collect();
            assert_eq!(
                s.estimate(&params),
                percentile(&exact, 90.0),
                "exact while ≤ 5 samples"
            );
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.representatives().len(), 5);
    }

    #[test]
    fn tracks_streams_like_the_reference_estimator() {
        // The compact sketch and the f64 reference run the same marker
        // update; on an f32-representable stream they should stay within
        // a small tolerance of the exact percentile and of each other.
        for p in [50.0, 90.0, 99.0] {
            let params = SketchParams::new(p);
            let mut s = EdgeSketch::new();
            let mut reference = P2Quantile::new(p);
            let exact: Vec<f64> = (0..5000).map(|i| noise(i) as f32 as f64).collect();
            for &x in &exact {
                s.observe(x as f32, &params);
                reference.observe(x);
            }
            let truth = percentile(&exact, p).unwrap();
            let est = s.estimate(&params).unwrap();
            let ref_est = reference.estimate().unwrap();
            assert!((est - truth).abs() < 0.02, "p{p}: sketch {est} vs {truth}");
            assert!(
                (est - ref_est).abs() < 0.02,
                "p{p}: sketch {est} vs reference {ref_est}"
            );
        }
    }

    #[test]
    fn infinite_tail_matches_the_reference_convention() {
        let params = SketchParams::new(90.0);
        let mut s = EdgeSketch::new();
        for i in 0..850 {
            s.observe(noise(i) as f32, &params);
        }
        for _ in 0..150 {
            s.observe(f32::INFINITY, &params);
        }
        assert_eq!(s.estimate(&params), Some(f64::INFINITY));
        assert_eq!(s.infinite(), 150);

        let med = SketchParams::new(50.0);
        let mut s = EdgeSketch::new();
        for i in 0..850 {
            s.observe(noise(i) as f32, &med);
        }
        for _ in 0..150 {
            s.observe(f32::INFINITY, &med);
        }
        assert!(s.estimate(&med).unwrap().is_finite());
    }

    #[test]
    fn all_infinite_is_infinite_and_keeps_no_representatives() {
        let params = SketchParams::new(50.0);
        let mut s = EdgeSketch::new();
        for _ in 0..10 {
            s.observe(f32::INFINITY, &params);
        }
        assert_eq!(s.estimate(&params), Some(f64::INFINITY));
        assert!(s.representatives().is_empty());
    }

    #[test]
    fn determinism_same_stream_same_state() {
        let params = SketchParams::new(90.0);
        let mut a = EdgeSketch::new();
        let mut b = EdgeSketch::new();
        for i in 0..500 {
            a.observe(noise(i) as f32, &params);
            b.observe(noise(i) as f32, &params);
        }
        assert_eq!(a, b);
        assert_eq!(
            a.estimate(&params).unwrap().to_bits(),
            b.estimate(&params).unwrap().to_bits()
        );
    }

    #[test]
    fn heights_stay_sorted_through_the_update() {
        let params = SketchParams::new(90.0);
        let mut s = EdgeSketch::new();
        for i in 0..3000 {
            s.observe((noise(i) * 1000.0) as f32, &params);
            if s.finite() >= 5 {
                let h = s.heights;
                assert!(
                    h.windows(2).all(|w| w[0] <= w[1]),
                    "heights out of order after sample {i}: {h:?}"
                );
            }
        }
    }

    #[test]
    fn codec_roundtrip() {
        use serde::bin::{Decode, Encode};
        let params = SketchParams::new(75.0);
        let mut s = EdgeSketch::new();
        for i in 0..100 {
            s.observe(noise(i) as f32, &params);
        }
        let back = EdgeSketch::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);

        let mut m = MultiQuantile::kaspa_tuple();
        for i in 0..100 {
            m.observe(noise(i));
        }
        let back = MultiQuantile::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn multi_quantile_tracks_each_percentile() {
        let mut m = MultiQuantile::new(&[50.0, 90.0]);
        let exact: Vec<f64> = (0..4000).map(noise).collect();
        for &x in &exact {
            m.observe(x);
        }
        let t = m.estimates_or_inf();
        let p50 = percentile(&exact, 50.0).unwrap();
        let p90 = percentile(&exact, 90.0).unwrap();
        assert!((t[0] - p50).abs() < 0.02, "p50 {} vs {p50}", t[0]);
        assert!((t[1] - p90).abs() < 0.02, "p90 {} vs {p90}", t[1]);
        assert_eq!(m.count(), 4000);
        assert_eq!(m.percentiles(), vec![50.0, 90.0]);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_observation_panics() {
        EdgeSketch::new().observe(f32::NAN, &SketchParams::new(50.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        let _ = SketchParams::new(101.0);
    }
}
