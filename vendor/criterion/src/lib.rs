//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the perigee benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — with a simple
//! wall-clock harness: each benchmark is warmed up once, then timed for a
//! fixed number of samples, and the min / median / mean sample times are
//! printed. No statistics beyond that, no plots, no baseline storage.
//!
//! Benchmark filtering works as with real criterion: extra command-line
//! arguments are substring filters on the full benchmark id.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes flags like `--bench`; anything that does not
        // start with `-` is treated as a name filter, as criterion does.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    /// Applies command-line configuration (kept for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn enabled(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Benchmarks a single function under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// A group of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API parity; the stand-in always times `sample_size`
    /// samples regardless of the requested measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.sample_size, f);
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.sample_size, |b| {
            b_input(&mut f, b, input)
        });
        self
    }

    /// Ends the group (printing happens as benches run).
    pub fn finish(self) {}
}

fn b_input<T: ?Sized, F: FnMut(&mut Bencher, &T)>(f: &mut F, b: &mut Bencher, input: &T) {
    f(b, input)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into the display id used for reporting and filtering.
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput hint (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code to
/// time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`, recording each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up to populate caches / branch predictors.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    if !criterion.enabled(id) {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples: routine never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{id:<50} min {:>12} med {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
        });
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6, "one warm-up plus five samples");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).into_benchmark_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with('s'));
    }
}
