//! Checkpoint/resume and invariant-auditor benchmarks.
//!
//! Two sections:
//!
//! * `resume_smoke/*` — CI's correctness gate for the checkpoint
//!   subsystem: a 30-round churny, fault-injected UCB run is killed at
//!   round 15, resumed through the serialized envelope, and must be
//!   bit-identical to the uninterrupted control run with the auditor
//!   green throughout; the criterion group times the envelope encode and
//!   decode themselves.
//! * `audit-report` — hand-timed per-round medians on a 1k-node churny
//!   faulted world with the auditor off vs auditing every round, plus
//!   snapshot encode/decode cost and envelope size, written to
//!   `BENCH_audit.json` at the workspace root. The auditor's contract is
//!   ≤ 2% per-round overhead at audit-every-round.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use perigee_bench::{bench_json, median, section_enabled, MemoryFootprint};
use perigee_core::{PerigeeEngine, RunSnapshot};
use perigee_experiments::resume::{chaos_engine, run_kill_resume, AuditOptions};
use perigee_experiments::Scenario;
use perigee_netsim::GeoLatencyModel;

const SMOKE_ROUNDS: usize = 30;

fn smoke_scenario() -> Scenario {
    Scenario {
        nodes: 120,
        rounds: SMOKE_ROUNDS,
        blocks_per_round: 6,
        ..Scenario::quick()
    }
}

fn bench_resume_smoke(c: &mut Criterion) {
    if !section_enabled("resume_smoke") {
        return;
    }
    // The correctness gate: kill at round 15 of 30, resume from the
    // newest snapshot, demand bit-equality and a clean auditor.
    let scenario = smoke_scenario();
    let audit = AuditOptions {
        every: 1,
        strict: false,
    };
    let r = run_kill_resume(&scenario, 23, 5, audit, None).expect("smoke run");
    assert_eq!(r.kill_at, SMOKE_ROUNDS / 2, "must kill at the midpoint");
    assert!(
        r.bit_identical,
        "resumed run must be bit-identical to the uninterrupted run"
    );
    assert_eq!(r.audit_violations, 0, "auditor must stay green");
    assert!(r.audits_run >= SMOKE_ROUNDS, "auditor must actually run");
    assert!(
        r.joined > 0 && r.departed > 0,
        "churn must fire for the smoke to bite"
    );

    // Criterion timings for the envelope itself on the same world.
    let (mut engine, mut rng) = chaos_engine(&scenario, 23);
    for _ in 0..SMOKE_ROUNDS / 2 {
        engine.run_round(&mut rng);
    }
    let bytes = engine.checkpoint(&rng).to_bytes();
    let mut group = c.benchmark_group("resume_smoke");
    group.sample_size(20);
    group.bench_function("checkpoint_encode_120", |b| {
        b.iter(|| engine.checkpoint(&rng).to_bytes());
    });
    group.bench_function("envelope_decode_120", |b| {
        b.iter(|| RunSnapshot::from_bytes(&bytes).unwrap());
    });
    group.finish();
}

fn bench_audit_report(c: &mut Criterion) {
    if !section_enabled("audit-report") {
        return;
    }
    let mut group = c.benchmark_group("audit-report");
    group.sample_size(10);
    group.finish();

    // 1k-node churny, fault-injected world; median per-round cost with
    // the auditor off vs auditing every round.
    let scenario = Scenario {
        nodes: 1000,
        rounds: 40,
        blocks_per_round: 20,
        ..Scenario::quick()
    };
    // One engine auditing every round; each round we time the full
    // round (audit pass included) and then an explicit extra pass over
    // the same state. The hook's only added work *is* one pass, so
    // overhead = pass / (round − pass). Timing the pass directly is
    // drift-immune where an A/B of two whole 25-round runs is not: on a
    // noisy machine the round-to-round jitter (several %) swamps a ≲2%
    // signal, while the pass itself is measured exactly.
    const ROUNDS: usize = 25;
    let (mut engine, mut rng) = chaos_engine(&scenario, 31);
    engine.set_audit_every(1);
    let mut round_samples = Vec::with_capacity(ROUNDS);
    let mut pass_samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        criterion::black_box(engine.run_round(&mut rng));
        round_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        criterion::black_box(engine.audit());
        pass_samples.push(start.elapsed().as_secs_f64());
    }
    assert!(
        engine.audit_failures().is_empty(),
        "healthy 1k run must audit clean"
    );
    assert_eq!(engine.audits_run(), ROUNDS);
    let pass_s = median(&mut pass_samples);
    let round_with_audit_s = median(&mut round_samples);
    let off_s = round_with_audit_s - pass_s;
    let every_round_s = round_with_audit_s;
    let overhead = pass_s / off_s;

    // Envelope cost at 1k nodes: encode, decode, resume, size.
    let (mut engine, mut rng) = chaos_engine(&scenario, 31);
    for _ in 0..5 {
        engine.run_round(&mut rng);
    }
    let mut enc = [0.0f64; 5];
    let mut bytes = Vec::new();
    for slot in &mut enc {
        let start = Instant::now();
        bytes = engine.checkpoint(&rng).to_bytes();
        *slot = start.elapsed().as_secs_f64();
    }
    let encode_s = median(&mut enc);
    let mut dec = [0.0f64; 5];
    for slot in &mut dec {
        let start = Instant::now();
        let snapshot = RunSnapshot::from_bytes(&bytes).unwrap();
        criterion::black_box(
            PerigeeEngine::<GeoLatencyModel>::resume(snapshot).expect("resume 1k"),
        );
        *slot = start.elapsed().as_secs_f64();
    }
    let decode_resume_s = median(&mut dec);

    println!(
        "audit: 1k-node churny faulted round {off_s:.4} s audit-free vs {every_round_s:.4} s \
         audit-every-round ({pass_s:.5} s per pass) -> {:+.2}% overhead (contract: <= 2%); \
         checkpoint encode {encode_s:.4} s, decode+resume {decode_resume_s:.4} s, \
         envelope {} bytes",
        overhead * 100.0,
        bytes.len(),
    );
    assert!(
        overhead <= 0.02,
        "auditor overhead {:.2}% exceeds the 2% contract",
        overhead * 100.0
    );

    let fields = format!(
        "  \"nodes\": 1000,\n  \"blocks_per_round\": 20,\n  \"churn_fraction_per_round\": 0.02,\n  \
         \"fault_plan_active\": true,\n  \
         \"per_round_1k\": {{ \"audit_free_s\": {off_s:.4}, \"audit_every_round_s\": {every_round_s:.4}, \
         \"audit_pass_s\": {pass_s:.5}, \"audit_overhead\": {overhead:.4}, \
         \"contract_max_overhead\": 0.02 }},\n  \
         \"checkpoint_1k\": {{ \"encode_s\": {encode_s:.4}, \"decode_resume_s\": {decode_resume_s:.4}, \
         \"envelope_bytes\": {} }}\n",
        bytes.len(),
    );
    // Dominant structure: the serialized checkpoint envelope itself.
    let directed = engine.topology().edge_count() * 2;
    let mem = MemoryFootprint::per_edge(bytes.len(), directed);
    let json = bench_json(
        "audit",
        "nodes=1000,blocks=20,churn=0.02,faults=active",
        mem,
        &fields,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_resume_smoke, bench_audit_report);
criterion_main!(benches);
