//! Bandwidth heterogeneity (§2.1, §3.3): when blocks are large relative to
//! access bandwidth (Croman et al. measured 3–186 Mbit/s across Bitcoin
//! nodes), transfer time dominates and a good neighbor is a *well-provisioned*
//! one, not merely a nearby one.
//!
//! **Reproduction finding.** Perigee's observations are INV *announcement*
//! timestamps (§4.1 footnote: "blocks, or advertisements for blocks").
//! Announcement time reflects the announcer's own (bandwidth-limited)
//! receive time, so Perigee does learn to prefer well-provisioned peers —
//! but it cannot observe the *last-hop* transfer cost of actually fetching
//! from a neighbor. Its advantage therefore shrinks from ~16% in the
//! propagation-dominated regime toward low single digits when 1 MB
//! transfers dominate (the paper's default setting assumes negligible
//! block size, §5.1(3), so this regime is outside its evaluation).

use rand::rngs::StdRng;
use rand::SeedableRng;

use perigee_core::{PerigeeConfig, PerigeeEngine, PropagationMode, ScoringMethod};
use perigee_metrics::{percentile_or_inf, Table};
use perigee_netsim::{
    ConnectionLimits, GeoLatencyModel, GossipConfig, GossipMode, OverrideLatencyModel,
    PopulationBuilder, SimTime, TransferModel, ValidationDist,
};
use perigee_topology::{RandomBuilder, TopologyBuilder};

use crate::scenario::Scenario;

/// Result of one block-size setting.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthPoint {
    /// Block size in megabytes.
    pub block_size_mb: f64,
    /// Median λ90 on the static random topology (ms).
    pub random_median90_ms: f64,
    /// Median λ90 after Perigee-Subset adapts under the same gossip
    /// dynamics (ms).
    pub perigee_median90_ms: f64,
}

impl BandwidthPoint {
    /// Perigee's relative improvement at this block size.
    pub fn improvement(&self) -> f64 {
        if self.random_median90_ms == 0.0 {
            return 0.0;
        }
        (self.random_median90_ms - self.perigee_median90_ms) / self.random_median90_ms
    }
}

/// The block-size sweep result.
#[derive(Debug, Clone)]
pub struct BandwidthResult {
    /// Points in sweep order.
    pub points: Vec<BandwidthPoint>,
}

impl BandwidthResult {
    /// Summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "block size (MB)".into(),
            "random λ90 (ms)".into(),
            "perigee λ90 (ms)".into(),
            "improvement".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{:.2}", p.block_size_mb),
                format!("{:.1}", p.random_median90_ms),
                format!("{:.1}", p.perigee_median90_ms),
                format!("{:+.1}%", p.improvement() * 100.0),
            ]);
        }
        t
    }
}

/// Runs the sweep: skewed 3–186 Mbit/s access bandwidth, INV/GETDATA
/// gossip, blocks of each given size.
pub fn run(scenario: &Scenario, seed: u64, block_sizes_mb: &[f64]) -> BandwidthResult {
    let points = block_sizes_mb
        .iter()
        .map(|&mb| run_one(scenario, seed, mb))
        .collect();
    BandwidthResult { points }
}

fn run_one(scenario: &Scenario, seed: u64, block_size_mb: f64) -> BandwidthPoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let population = PopulationBuilder::new(scenario.nodes)
        .validation(ValidationDist::Exponential(SimTime::from_ms(50.0)))
        .bandwidth_skew(true)
        .build(&mut rng)
        .expect("non-empty scenario");
    let latency = OverrideLatencyModel::new(GeoLatencyModel::new(&population, seed));
    let topology = RandomBuilder::new().build(
        &population,
        &latency,
        ConnectionLimits::paper_default(),
        &mut rng,
    );
    let gossip = GossipConfig {
        mode: GossipMode::InvGetData,
        transfer: TransferModel::new(block_size_mb),
    };

    let mut config = PerigeeConfig::paper_default(ScoringMethod::Subset);
    config.blocks_per_round = scenario.blocks_per_round;
    let mut engine =
        PerigeeEngine::new(population, latency, topology, ScoringMethod::Subset, config)
            .expect("valid scenario");
    engine.set_propagation_mode(PropagationMode::Gossip(gossip));

    let random_median90_ms = percentile_or_inf(&engine.evaluate_in_mode(scenario.coverage), 50.0);
    engine.run_rounds(scenario.rounds, &mut rng);
    let perigee_median90_ms = percentile_or_inf(&engine.evaluate_in_mode(scenario.coverage), 50.0);

    BandwidthPoint {
        block_size_mb,
        random_median90_ms,
        perigee_median90_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perigee_adapts_to_bandwidth_bottlenecks() {
        let scenario = Scenario {
            nodes: 120,
            rounds: 8,
            blocks_per_round: 20,
            seeds: vec![1],
            ..Scenario::paper()
        };
        let r = run(&scenario, 3, &[0.0, 1.0]);
        assert_eq!(r.points.len(), 2);
        // Large blocks slow everything down...
        assert!(r.points[1].random_median90_ms > r.points[0].random_median90_ms);
        // ...Perigee clearly improves the propagation-dominated regime...
        assert!(
            r.points[0].improvement() > 0.05,
            "no improvement at negligible block size: {:+.1}%",
            r.points[0].improvement() * 100.0
        );
        // ...and does not meaningfully regress when transfers dominate
        // (see the module docs for why the advantage shrinks there).
        assert!(
            r.points[1].improvement() > -0.10,
            "regression at 1 MB: {:+.1}%",
            r.points[1].improvement() * 100.0
        );
        assert_eq!(r.table().len(), 2);
    }
}
