//! Link-level fault scenarios: bursty loss, partitions, brownouts, flaps.
//!
//! The paper's evaluation (§5) runs on a perfectly reliable message
//! layer; its robustness discussion (§6) asks how the protocol behaves
//! when links themselves misbehave. This module drives
//! [`PerigeeEngine`] through a seeded
//! [`FaultPlan`](perigee_netsim::FaultPlan) and measures the two
//! graceful-degradation levers the engine grew for exactly this regime:
//!
//! * **stability gating** — a node whose blocks-seen count deviates from
//!   the round's block budget by more than
//!   [`stability_tolerance`](perigee_core::PerigeeConfig::stability_tolerance)
//!   skips scoring (its observations are corrupted by the outage) but
//!   keeps exploring, so the overlay still mixes while bad evidence is
//!   quarantined;
//! * **peer liveness** — persistently silent links escalate
//!   Healthy → Suspect → Evict and the freed slots refill through the
//!   address book under capped exponential backoff
//!   (see [`LivenessConfig`]).
//!
//! Four scenarios:
//!
//! * [`run_burst_loss`] — a heavy mid-run loss burst, run twice from the
//!   same seed with gating on (`0.175`) vs off (`∞`). The ablation the
//!   tentpole claim rests on: gated never ends worse, and during gated
//!   rounds the rewiring counter proves exploration kept going;
//! * [`run_partition_heal`] — a timed partition cuts a minority off,
//!   then heals; the overlay must return to within a few percent of its
//!   pre-partition λ90;
//! * [`run_regional_brownout`] — one region's links degrade by a slow
//!   factor for a window, visible as a hump in the per-round λ-curve;
//! * [`run_flap_grid`] — a grid over flapping-link regimes (fraction ×
//!   duty cycle) stressing the liveness evict/backoff path.
//!
//! Every per-round λ90 figure below is measured **through** the faults
//! (that is what nodes actually experience); the pre/post medians use the
//! fault-free [`PerigeeEngine::evaluate_alive`] so they grade the learned
//! overlay itself, not the weather it was learned under.

use rand::rngs::StdRng;
use rand::SeedableRng;

use perigee_core::{LivenessConfig, PerigeeConfig, PerigeeEngine, ScoringMethod};
use perigee_metrics::{percentile_or_inf, Table};
use perigee_netsim::{
    ConnectionLimits, FaultPlan, FaultWindow, LinkFaultRates, LinkFlaps, PartitionWindow, Region,
    RegionalWindow, SimTime,
};
use perigee_topology::{RandomBuilder, TopologyBuilder};

use crate::runner::{build_world, WorldLatency};
use crate::scenario::Scenario;

/// Builds a Perigee engine on the scenario world with the given scoring
/// method, stability tolerance and liveness setting, and `plan`
/// installed.
fn faulted_engine(
    scenario: &Scenario,
    seed: u64,
    method: ScoringMethod,
    tolerance: f64,
    liveness: LivenessConfig,
    plan: FaultPlan,
) -> (PerigeeEngine<WorldLatency>, StdRng) {
    let world = build_world(scenario, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    let topo = RandomBuilder::new().build(
        &world.population,
        &world.latency,
        ConnectionLimits::paper_default(),
        &mut rng,
    );
    let mut config = PerigeeConfig::paper_default(method);
    config.blocks_per_round = scenario.blocks_per_round;
    config.stability_tolerance = tolerance;
    config.liveness = liveness;
    let mut engine = PerigeeEngine::new(world.population, world.latency, topo, method, config)
        .expect("valid scenario");
    engine.set_fault_plan(plan).expect("valid fault plan");
    crate::trace::attach(&mut engine, "faults", seed);
    (engine, rng)
}

/// One arm of a faulted run: the per-round trace plus the degradation
/// counters that prove what the engine did while the faults were live.
#[derive(Debug, Clone)]
pub struct FaultRunTrace {
    /// Per-round p90 of per-block λ90 (ms), measured through the faults.
    pub per_round_p90_ms: Vec<f64>,
    /// Per-round stability-gated node counts.
    pub per_round_gated: Vec<usize>,
    /// Rounds in which at least one node was stability-gated.
    pub gated_rounds: usize,
    /// Sum of per-round gated-node counts.
    pub total_gated: usize,
    /// Sum of per-round liveness evictions.
    pub total_evicted: usize,
    /// Connections replaced during rounds that had gated nodes — the
    /// exploration-continues witness: gating skips *scoring*, not mixing.
    pub rewires_during_gated_rounds: usize,
    /// Median fault-free λ90 at the checkpoint round (for the burst
    /// ablation: right after the burst ends, before any recovery rounds
    /// dilute the comparison). Equals `final_median90_ms` when the run
    /// had no checkpoint.
    pub checkpoint_median90_ms: f64,
    /// Median fault-free λ90 over live sources after the run.
    pub final_median90_ms: f64,
    /// Snapshot rebuilds the engine paid (1 = the initial build only).
    pub view_rebuilds: usize,
}

fn run_trace(
    mut engine: PerigeeEngine<WorldLatency>,
    mut rng: StdRng,
    rounds: usize,
    checkpoint: Option<usize>,
) -> FaultRunTrace {
    let mut trace = FaultRunTrace {
        per_round_p90_ms: Vec::with_capacity(rounds),
        per_round_gated: Vec::with_capacity(rounds),
        gated_rounds: 0,
        total_gated: 0,
        total_evicted: 0,
        rewires_during_gated_rounds: 0,
        checkpoint_median90_ms: f64::INFINITY,
        final_median90_ms: f64::INFINITY,
        view_rebuilds: 0,
    };
    for round in 0..rounds {
        if checkpoint == Some(round) {
            trace.checkpoint_median90_ms = percentile_or_inf(&engine.evaluate_alive(0.9), 50.0);
        }
        let stats = engine.run_round(&mut rng);
        trace.per_round_p90_ms.push(stats.p90_lambda90_ms);
        trace.per_round_gated.push(stats.gated);
        if stats.gated > 0 {
            trace.gated_rounds += 1;
            trace.rewires_during_gated_rounds += stats.dropped;
        }
        trace.total_gated += stats.gated;
        trace.total_evicted += stats.evicted;
    }
    engine.topology().assert_invariants();
    trace.final_median90_ms = percentile_or_inf(&engine.evaluate_alive(0.9), 50.0);
    if checkpoint.is_none() {
        trace.checkpoint_median90_ms = trace.final_median90_ms;
    }
    trace.view_rebuilds = engine.view_rebuilds();
    trace
}

/// Outcome of the burst-loss gated-vs-ungated ablation.
#[derive(Debug, Clone)]
pub struct BurstLossResult {
    /// First round of the loss burst.
    pub burst_start: usize,
    /// One past the last round of the loss burst.
    pub burst_end: usize,
    /// The arm with stability gating at the paper default (0.175).
    pub gated: FaultRunTrace,
    /// The arm with gating disabled (`stability_tolerance = ∞`).
    pub ungated: FaultRunTrace,
}

impl BurstLossResult {
    /// Relative advantage of gating measured right after the burst ends
    /// (the checkpoint medians): positive means the gated overlay came
    /// out of the burst with a lower fault-free median λ90.
    pub fn gated_advantage(&self) -> f64 {
        1.0 - self.gated.checkpoint_median90_ms / self.ungated.checkpoint_median90_ms
    }

    /// Relative advantage of gating at the end of the run, after the
    /// post-burst recovery rounds.
    pub fn final_advantage(&self) -> f64 {
        1.0 - self.gated.final_median90_ms / self.ungated.final_median90_ms
    }

    /// Per-round λ-curves for both arms, with the gated arm's
    /// degradation counters alongside.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "round".into(),
            "ungated p90 λ90 (ms)".into(),
            "gated p90 λ90 (ms)".into(),
            "gated nodes".into(),
            "in burst".into(),
        ]);
        for (i, (u, g)) in self
            .ungated
            .per_round_p90_ms
            .iter()
            .zip(&self.gated.per_round_p90_ms)
            .enumerate()
        {
            let in_burst = i >= self.burst_start && i < self.burst_end;
            t.row(vec![
                i.to_string(),
                format!("{u:.1}"),
                format!("{g:.1}"),
                self.gated.per_round_gated[i].to_string(),
                if in_burst { "*".into() } else { String::new() },
            ]);
        }
        t
    }
}

/// The burst-window loss rates: heavy enough that whole blocks go
/// missing at many nodes, which is what trips the stability gate.
fn burst_rates() -> LinkFaultRates {
    LinkFaultRates {
        drop_prob: 0.8,
        extra_delay: SimTime::from_ms(24.0),
        jitter: SimTime::from_ms(48.0),
        duplicate_prob: 0.0,
    }
}

/// Light always-on background faults, so the "calm" rounds are weathered
/// rather than sterile.
fn background_rates() -> LinkFaultRates {
    LinkFaultRates {
        drop_prob: 0.01,
        extra_delay: SimTime::from_ms(1.0),
        jitter: SimTime::from_ms(4.0),
        duplicate_prob: 0.02,
    }
}

/// Runs the mid-run loss burst twice from the same seed — stability
/// gating at the paper default vs disabled — so the two λ-curves and
/// final overlays differ only by the gate.
///
/// The burst is a correlated outage, the shape real incidents take:
/// heavy per-link loss *plus* a transient brownout of `Region::Europe`
/// over the same rounds. The correlation is what makes the ablation
/// sharp — during the burst the network's genuinely fast Europe links
/// look terrible, so score-driven rewiring doesn't merely churn at
/// random, it systematically abandons exactly the neighbors that will
/// be the best ones again the moment the window closes.
///
/// The ablation runs Perigee-UCB: its cross-round [`NodeHistory`]
/// (see [`perigee_core::NodeHistory`]) is exactly the state the gate
/// exists to protect. An ungated UCB absorbs the burst's inverted
/// arrival times into per-neighbor history and walks away from its
/// best links; a gated UCB skips absorption for the affected rounds
/// (its drops stay unbiased exploration) and resumes from clean
/// pre-burst estimates. (Subset scoring is stateless, so for it a
/// blackout round is near-harmless either way — the interesting
/// comparison is the stateful scorer.)
///
/// Both arms run with [`LivenessConfig::disabled`] so they differ by
/// the gate alone — eviction churn would reset per-connection history
/// in both arms and mask the comparison. The evict/backoff path is
/// exercised by the partition, brownout and flap scenarios instead.
/// The gap is sharpest in the paper's short-round UCB regime (few
/// blocks per round; the `repro faults` driver uses 5): the fewer
/// observations a round carries, the longer a wrongly-dropped link
/// takes to re-learn, and so the more the protected history is worth.
pub fn run_burst_loss(scenario: &Scenario, seed: u64) -> BurstLossResult {
    let burst_start = scenario.rounds / 3;
    let burst_end = (burst_start + scenario.rounds / 3).max(burst_start + 1);
    let plan = FaultPlan {
        base: background_rates(),
        windows: vec![FaultWindow {
            start: burst_start,
            end: burst_end,
            rates: burst_rates(),
        }],
        regional: vec![RegionalWindow {
            region: Region::Europe,
            start: burst_start,
            end: burst_end,
            slow_factor: 20.0,
        }],
        ..FaultPlan::inert(seed ^ 0xB0057)
    };
    let (engine, rng) = faulted_engine(
        scenario,
        seed,
        ScoringMethod::Ucb,
        0.175,
        LivenessConfig::disabled(),
        plan.clone(),
    );
    let gated = run_trace(engine, rng, scenario.rounds, Some(burst_end));
    let (engine, rng) = faulted_engine(
        scenario,
        seed,
        ScoringMethod::Ucb,
        f64::INFINITY,
        LivenessConfig::disabled(),
        plan,
    );
    let ungated = run_trace(engine, rng, scenario.rounds, Some(burst_end));
    BurstLossResult {
        burst_start,
        burst_end,
        gated,
        ungated,
    }
}

/// Outcome of the partition-and-heal scenario.
#[derive(Debug, Clone)]
pub struct PartitionHealResult {
    /// Round the partition starts.
    pub start: usize,
    /// Round the partition heals.
    pub heal: usize,
    /// Fraction of nodes cut off on the minority side.
    pub fraction: f64,
    /// Per-round p90 of per-block λ90 (ms), measured through the faults.
    pub per_round_p90_ms: Vec<f64>,
    /// Fault-free median λ90 just before the partition starts.
    pub pre_partition_median90_ms: f64,
    /// Fault-free median λ90 at the end of the run, after healing.
    pub recovered_median90_ms: f64,
    /// Sum of per-round gated-node counts.
    pub total_gated: usize,
    /// Sum of per-round liveness evictions.
    pub total_evicted: usize,
    /// Snapshot rebuilds the engine paid (1 = the initial build only).
    pub view_rebuilds: usize,
}

impl PartitionHealResult {
    /// Relative gap between the recovered and pre-partition medians:
    /// 0.10 means the healed overlay is 10% slower than before the cut.
    pub fn recovery_gap(&self) -> f64 {
        self.recovered_median90_ms / self.pre_partition_median90_ms - 1.0
    }

    /// Per-round λ-curve annotated with the partition phase.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["round".into(), "p90 λ90 (ms)".into(), "phase".into()]);
        for (i, v) in self.per_round_p90_ms.iter().enumerate() {
            let phase = if i < self.start {
                "before"
            } else if i < self.heal {
                "partitioned"
            } else {
                "healed"
            };
            t.row(vec![i.to_string(), format!("{v:.1}"), phase.into()]);
        }
        t
    }
}

/// Cuts `fraction` of nodes off for the middle third of the run, then
/// heals and measures how close the overlay gets back to its
/// pre-partition quality.
pub fn run_partition_heal(scenario: &Scenario, seed: u64, fraction: f64) -> PartitionHealResult {
    let start = scenario.rounds / 3;
    let heal = (2 * scenario.rounds / 3).max(start + 1);
    let plan = FaultPlan {
        partitions: vec![PartitionWindow {
            start,
            heal,
            fraction,
        }],
        ..FaultPlan::inert(seed ^ 0x9A47)
    };
    let (mut engine, mut rng) = faulted_engine(
        scenario,
        seed,
        ScoringMethod::Subset,
        0.175,
        LivenessConfig::aggressive(),
        plan,
    );
    let mut per_round_p90_ms = Vec::with_capacity(scenario.rounds);
    let (mut total_gated, mut total_evicted) = (0, 0);
    let mut pre_partition_median90_ms = f64::INFINITY;
    for round in 0..scenario.rounds {
        if round == start {
            pre_partition_median90_ms = percentile_or_inf(&engine.evaluate_alive(0.9), 50.0);
        }
        let stats = engine.run_round(&mut rng);
        per_round_p90_ms.push(stats.p90_lambda90_ms);
        total_gated += stats.gated;
        total_evicted += stats.evicted;
    }
    engine.topology().assert_invariants();
    let recovered_median90_ms = percentile_or_inf(&engine.evaluate_alive(0.9), 50.0);
    PartitionHealResult {
        start,
        heal,
        fraction,
        per_round_p90_ms,
        pre_partition_median90_ms,
        recovered_median90_ms,
        total_gated,
        total_evicted,
        view_rebuilds: engine.view_rebuilds(),
    }
}

/// Outcome of the regional-brownout scenario.
#[derive(Debug, Clone)]
pub struct BrownoutResult {
    /// The degraded region.
    pub region: Region,
    /// Latency multiplier applied to the region's links in the window.
    pub slow_factor: f64,
    /// First round of the brownout window.
    pub start: usize,
    /// One past the last round of the brownout window.
    pub end: usize,
    /// Per-round p90 of per-block λ90 (ms), measured through the faults.
    pub per_round_p90_ms: Vec<f64>,
    /// Mean per-round p90 λ90 inside the window.
    pub mean_inside_ms: f64,
    /// Mean per-round p90 λ90 outside the window.
    pub mean_outside_ms: f64,
    /// Fault-free median λ90 at the end of the run.
    pub final_median90_ms: f64,
    /// Sum of per-round gated-node counts.
    pub total_gated: usize,
}

impl BrownoutResult {
    /// Per-round λ-curve with the window marked.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "round".into(),
            "p90 λ90 (ms)".into(),
            "brownout".into(),
        ]);
        for (i, v) in self.per_round_p90_ms.iter().enumerate() {
            let inside = i >= self.start && i < self.end;
            t.row(vec![
                i.to_string(),
                format!("{v:.1}"),
                if inside { "*".into() } else { String::new() },
            ]);
        }
        t
    }
}

/// Degrades every link touching `Region::Europe` by `slow_factor` for
/// the middle third of the run.
pub fn run_regional_brownout(scenario: &Scenario, seed: u64, slow_factor: f64) -> BrownoutResult {
    let start = scenario.rounds / 3;
    let end = (2 * scenario.rounds / 3).max(start + 1);
    let region = Region::Europe;
    let plan = FaultPlan {
        regional: vec![RegionalWindow {
            region,
            start,
            end,
            slow_factor,
        }],
        ..FaultPlan::inert(seed ^ 0xB70)
    };
    let (mut engine, mut rng) = faulted_engine(
        scenario,
        seed,
        ScoringMethod::Subset,
        0.175,
        LivenessConfig::aggressive(),
        plan,
    );
    let mut per_round_p90_ms = Vec::with_capacity(scenario.rounds);
    let mut total_gated = 0;
    for _ in 0..scenario.rounds {
        let stats = engine.run_round(&mut rng);
        per_round_p90_ms.push(stats.p90_lambda90_ms);
        total_gated += stats.gated;
    }
    engine.topology().assert_invariants();
    let mean = |rounds: &[f64]| rounds.iter().sum::<f64>() / rounds.len().max(1) as f64;
    let (mut inside, mut outside) = (Vec::new(), Vec::new());
    for (i, &v) in per_round_p90_ms.iter().enumerate() {
        if i >= start && i < end {
            inside.push(v);
        } else {
            outside.push(v);
        }
    }
    BrownoutResult {
        region,
        slow_factor,
        start,
        end,
        mean_inside_ms: mean(&inside),
        mean_outside_ms: mean(&outside),
        final_median90_ms: percentile_or_inf(&engine.evaluate_alive(0.9), 50.0),
        total_gated,
        per_round_p90_ms,
    }
}

/// One cell of the flapping-links grid.
#[derive(Debug, Clone)]
pub struct FlapCell {
    /// Fraction of links that flap.
    pub fraction: f64,
    /// Flap cycle length in rounds.
    pub period: usize,
    /// Down-rounds per cycle.
    pub down: usize,
    /// Mean per-round p90 λ90 (ms) across the run, through the faults.
    pub mean_p90_ms: f64,
    /// Fault-free median λ90 at the end of the run.
    pub final_median90_ms: f64,
    /// Liveness evictions over the run.
    pub total_evicted: usize,
    /// Gated-node count summed over the run.
    pub total_gated: usize,
}

/// Outcome of the flapping-links grid.
#[derive(Debug, Clone)]
pub struct FlapGridResult {
    /// One row per (fraction, period, down) combination, in sweep order.
    pub cells: Vec<FlapCell>,
}

impl FlapGridResult {
    /// The grid as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "flap fraction".into(),
            "period".into(),
            "down".into(),
            "mean p90 λ90 (ms)".into(),
            "final median λ90 (ms)".into(),
            "evicted".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                format!("{:.0}%", c.fraction * 100.0),
                c.period.to_string(),
                c.down.to_string(),
                format!("{:.1}", c.mean_p90_ms),
                format!("{:.1}", c.final_median90_ms),
                c.total_evicted.to_string(),
            ]);
        }
        t
    }
}

/// Sweeps flapping-link regimes: for each `fraction` and each
/// `(period, down)` duty cycle, the chosen links go dark for `down`
/// consecutive rounds out of every `period`.
pub fn run_flap_grid(
    scenario: &Scenario,
    seed: u64,
    fractions: &[f64],
    cycles: &[(usize, usize)],
) -> FlapGridResult {
    let mut cells = Vec::with_capacity(fractions.len() * cycles.len());
    for &fraction in fractions {
        for &(period, down) in cycles {
            let plan = FaultPlan {
                flaps: Some(LinkFlaps {
                    fraction,
                    period,
                    down,
                }),
                ..FaultPlan::inert(seed ^ 0xF1A9)
            };
            let (engine, rng) = faulted_engine(
                scenario,
                seed,
                ScoringMethod::Subset,
                0.175,
                LivenessConfig::aggressive(),
                plan,
            );
            let trace = run_trace(engine, rng, scenario.rounds, None);
            let mean_p90_ms = trace.per_round_p90_ms.iter().sum::<f64>()
                / trace.per_round_p90_ms.len().max(1) as f64;
            cells.push(FlapCell {
                fraction,
                period,
                down,
                mean_p90_ms,
                final_median90_ms: trace.final_median90_ms,
                total_evicted: trace.total_evicted,
                total_gated: trace.total_gated,
            });
        }
    }
    FlapGridResult { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 80,
            rounds: 12,
            blocks_per_round: 15,
            seeds: vec![1],
            ..Scenario::paper()
        }
    }

    #[test]
    fn burst_loss_gates_only_the_gated_arm_and_keeps_exploring() {
        let s = tiny();
        let r = run_burst_loss(&s, 1);
        assert_eq!(r.gated.per_round_p90_ms.len(), s.rounds);
        assert_eq!(r.ungated.per_round_p90_ms.len(), s.rounds);
        assert!(r.gated.total_gated > 0, "burst must trip the gate");
        assert_eq!(
            r.ungated.total_gated, 0,
            "infinite tolerance must never gate"
        );
        assert!(
            r.gated.rewires_during_gated_rounds > 0,
            "exploration must continue through gated rounds"
        );
        assert!(r.gated.final_median90_ms.is_finite());
        assert!(r.ungated.final_median90_ms.is_finite());
        assert_eq!(r.gated.view_rebuilds, 1);
        assert_eq!(r.table().len(), s.rounds);
    }

    #[test]
    fn burst_loss_is_deterministic_per_seed() {
        let s = tiny();
        let a = run_burst_loss(&s, 1);
        let b = run_burst_loss(&s, 1);
        assert_eq!(a.gated.per_round_p90_ms, b.gated.per_round_p90_ms);
        assert_eq!(a.ungated.per_round_p90_ms, b.ungated.per_round_p90_ms);
        assert_eq!(
            a.gated.final_median90_ms.to_bits(),
            b.gated.final_median90_ms.to_bits()
        );
    }

    #[test]
    fn partition_heal_recovers_a_finite_overlay() {
        let s = tiny();
        let r = run_partition_heal(&s, 1, 0.3);
        assert_eq!(r.per_round_p90_ms.len(), s.rounds);
        assert!(r.pre_partition_median90_ms.is_finite());
        assert!(r.recovered_median90_ms.is_finite());
        assert!(
            r.total_gated > 0,
            "a 30% cut must gate the minority side somewhere"
        );
        assert_eq!(r.view_rebuilds, 1);
        assert_eq!(r.table().len(), s.rounds);
    }

    #[test]
    fn brownout_is_visible_inside_the_window() {
        let s = tiny();
        let r = run_regional_brownout(&s, 1, 6.0);
        assert_eq!(r.per_round_p90_ms.len(), s.rounds);
        assert!(
            r.mean_inside_ms > r.mean_outside_ms,
            "a 6x regional slowdown must show up in the λ-curve \
             (inside {:.1} ms vs outside {:.1} ms)",
            r.mean_inside_ms,
            r.mean_outside_ms
        );
        assert!(r.final_median90_ms.is_finite());
    }

    #[test]
    fn flap_grid_covers_every_cell() {
        let s = tiny();
        let r = run_flap_grid(&s, 1, &[0.1, 0.3], &[(4, 1), (4, 2)]);
        assert_eq!(r.cells.len(), 4);
        for c in &r.cells {
            assert!(c.final_median90_ms.is_finite());
            assert!(c.mean_p90_ms.is_finite());
        }
        assert_eq!(r.table().len(), 4);
    }
}
