//! Checkpoint/resume for long-running worlds, and the strict auditor.
//!
//! The engine's [`PerigeeEngine::checkpoint`]/[`PerigeeEngine::resume`]
//! pair guarantees that a run killed at any round boundary and resumed
//! from its snapshot is **bit-identical** to the uninterrupted run. This
//! module packages that guarantee as an operational workflow for the
//! `repro resume` subcommand and the `resume_smoke` bench:
//!
//! * [`run_kill_resume`] — drive a churny, fault-injected world with
//!   periodic auto-checkpointing to disk, "kill" it midway, resume from
//!   the newest on-disk snapshot and prove the spliced run equals an
//!   uninterrupted control run, statistic for statistic;
//! * [`resume_from_file`] — the recovery path: load an envelope from
//!   disk (rejecting corruption with a structured [`SnapshotError`]) and
//!   keep running;
//! * [`AuditOptions`] — the release-mode invariant auditor: run the
//!   world-consistency pass every `k` rounds; in strict mode the first
//!   violation snapshots the offending round to disk and aborts.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use perigee_core::{
    PerigeeConfig, PerigeeEngine, RoundStats, RunSnapshot, ScoringMethod, SnapshotError,
};
use perigee_metrics::Table;
use perigee_netsim::{
    ChurnProcess, ConnectionLimits, FaultPlan, FaultWindow, GeoLatencyModel, LinkFaultRates,
    LinkFlaps, PopulationBuilder, SimTime,
};
use perigee_telemetry::PhaseTimer;
use perigee_topology::{RandomBuilder, TopologyBuilder};

use crate::scenario::Scenario;

/// Invariant-auditor settings for a driven run.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Run the auditor every `every` rounds (0 disables it).
    pub every: usize,
    /// Abort on the first violation, after snapshotting the offending
    /// round to disk (when an output directory is available).
    pub strict: bool,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            every: 1,
            strict: false,
        }
    }
}

/// The engine under test: Perigee-UCB (per-arm history buffers are the
/// hardest state to capture), aggressive liveness, steady-state churn
/// and an *active* fault plan — background loss plus a burst window and
/// flapping links scaled to the scenario length. Everything the
/// checkpoint subsystem claims to preserve is exercised at once.
pub fn chaos_engine(scenario: &Scenario, seed: u64) -> (PerigeeEngine<GeoLatencyModel>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = PopulationBuilder::new(scenario.nodes)
        .build(&mut rng)
        .expect("valid scenario");
    let lat = GeoLatencyModel::new(&pop, seed);
    let topo = RandomBuilder::new().build(&pop, &lat, ConnectionLimits::paper_default(), &mut rng);
    let mut cfg = PerigeeConfig::paper_default(ScoringMethod::Ucb);
    cfg.blocks_per_round = scenario.blocks_per_round;
    cfg.liveness = perigee_core::LivenessConfig::aggressive();
    let mut engine =
        PerigeeEngine::new(pop, lat, topo, ScoringMethod::Ucb, cfg).expect("valid scenario");
    engine.set_churn(ChurnProcess::steady_state(
        scenario.nodes,
        0.02,
        seed ^ 0x51EA,
    ));
    let burst_start = (scenario.rounds / 3).max(1);
    let plan = FaultPlan {
        seed: seed ^ 0xFA17,
        base: LinkFaultRates {
            drop_prob: 0.02,
            extra_delay: SimTime::from_ms(2.0),
            jitter: SimTime::from_ms(8.0),
            duplicate_prob: 0.03,
        },
        windows: vec![FaultWindow {
            start: burst_start,
            end: burst_start + (scenario.rounds / 4).max(1),
            rates: LinkFaultRates {
                drop_prob: 0.4,
                extra_delay: SimTime::from_ms(15.0),
                jitter: SimTime::from_ms(25.0),
                duplicate_prob: 0.0,
            },
        }],
        flaps: Some(LinkFlaps {
            fraction: 0.08,
            period: 5,
            down: 2,
        }),
        partitions: Vec::new(),
        regional: Vec::new(),
    };
    engine.set_fault_plan(plan).expect("windows are ordered");
    crate::trace::attach(&mut engine, "resume", seed);
    (engine, rng)
}

/// Drives `rounds` rounds under the auditor. Returns the per-round stats,
/// or — in strict mode — a rendered violation report after snapshotting
/// the offending round to `strict_out` (as `audit-violation.prgs`).
pub fn drive_audited(
    engine: &mut PerigeeEngine<GeoLatencyModel>,
    rng: &mut StdRng,
    rounds: usize,
    audit: AuditOptions,
    strict_out: Option<&Path>,
) -> Result<Vec<RoundStats>, String> {
    engine.set_audit_every(audit.every);
    let mut stats = Vec::with_capacity(rounds);
    let mut seen_failures = engine.audit_failures().len();
    for _ in 0..rounds {
        stats.push(engine.run_round(rng));
        if audit.strict && engine.audit_failures().len() > seen_failures {
            let report = engine.audit_failures().last().expect("just grew");
            let mut msg = format!("invariant audit failed:\n{report}");
            if let Some(dir) = strict_out {
                let path = dir.join("audit-violation.prgs");
                match std::fs::write(&path, engine.checkpoint(rng).to_bytes()) {
                    Ok(()) => msg.push_str(&format!(
                        "\n[offending round snapshotted to {}]",
                        path.display()
                    )),
                    Err(e) => msg.push_str(&format!("\n[snapshot write failed: {e}]")),
                }
            }
            return Err(msg);
        }
        seen_failures = engine.audit_failures().len();
    }
    Ok(stats)
}

/// Outcome of [`run_kill_resume`].
#[derive(Debug, Clone)]
pub struct KillResumeResult {
    /// Rounds in the full run.
    pub total_rounds: usize,
    /// Round at which the first leg was killed.
    pub kill_at: usize,
    /// Round recorded in the snapshot the run resumed from.
    pub resumed_from: u64,
    /// Size of the resumed-from envelope on the wire, in bytes.
    pub snapshot_bytes: usize,
    /// Checkpoints written during the first leg.
    pub checkpoints: Vec<PathBuf>,
    /// Whether every per-round statistic, the learned topology, the
    /// population and the final evaluation matched the uninterrupted
    /// control run bit for bit.
    pub bit_identical: bool,
    /// Auditor passes across both legs of the spliced run.
    pub audits_run: usize,
    /// Violations the auditor reported (0 on a healthy engine).
    pub audit_violations: usize,
    /// Arrivals over the spliced run.
    pub joined: usize,
    /// Departures over the spliced run.
    pub departed: usize,
}

impl KillResumeResult {
    /// Summary table for the harness output.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["field".into(), "value".into()]);
        t.row(vec!["rounds".into(), self.total_rounds.to_string()]);
        t.row(vec!["killed at round".into(), self.kill_at.to_string()]);
        t.row(vec![
            "resumed from round".into(),
            self.resumed_from.to_string(),
        ]);
        t.row(vec![
            "snapshot bytes".into(),
            self.snapshot_bytes.to_string(),
        ]);
        t.row(vec![
            "checkpoints written".into(),
            self.checkpoints.len().to_string(),
        ]);
        t.row(vec![
            "bit-identical to uninterrupted".into(),
            self.bit_identical.to_string(),
        ]);
        t.row(vec!["auditor passes".into(), self.audits_run.to_string()]);
        t.row(vec![
            "auditor violations".into(),
            self.audit_violations.to_string(),
        ]);
        t.row(vec![
            "joined / departed".into(),
            format!("{} / {}", self.joined, self.departed),
        ]);
        t
    }
}

/// The full workflow: run the chaos world with auto-checkpointing every
/// `checkpoint_every` rounds (written to `out` when given), kill it at
/// `rounds / 2`, resume from the newest snapshot — through the on-disk
/// envelope when available, in-memory bytes otherwise — and run to the
/// end. An uninterrupted control run over the same seed provides the
/// bit-equality reference.
pub fn run_kill_resume(
    scenario: &Scenario,
    seed: u64,
    checkpoint_every: usize,
    audit: AuditOptions,
    out: Option<&Path>,
) -> Result<KillResumeResult, String> {
    let total = scenario.rounds.max(2);
    let kill_at = total / 2;
    let every = checkpoint_every.max(1);

    // Control leg: the uninterrupted run.
    let (mut control, mut control_rng) = chaos_engine(scenario, seed);
    let control_stats = drive_audited(&mut control, &mut control_rng, total, audit, out)?;

    // First leg: run to the kill point, checkpointing as we go.
    let (mut engine, mut rng) = chaos_engine(scenario, seed);
    let mut stats: Vec<RoundStats> = Vec::with_capacity(total);
    let mut checkpoints = Vec::new();
    let mut newest: Option<Vec<u8>> = None;
    // Checkpoint encode/decode costs go to the trace as a command-level
    // phase profile (disabled — zero clock reads — when tracing is off).
    let mut ckpt_timer = PhaseTimer::new(crate::trace::installed().is_some());
    for r in 1..=kill_at {
        stats.extend(drive_audited(&mut engine, &mut rng, 1, audit, out)?);
        if r % every == 0 || r == kill_at {
            ckpt_timer.restart();
            let bytes = engine.checkpoint(&rng).to_bytes();
            ckpt_timer.lap("checkpoint_encode");
            if let Some(dir) = out {
                let path = dir.join(format!("checkpoint-r{r:05}.prgs"));
                std::fs::write(&path, &bytes).map_err(|e| format!("checkpoint write: {e}"))?;
                checkpoints.push(path);
            }
            newest = Some(bytes);
        }
    }
    let mut audits_run = engine.audits_run();
    let mut audit_violations: usize = engine
        .audit_failures()
        .iter()
        .map(|r| r.violations.len())
        .sum();

    // The "kill": drop the live engine; all that survives is the newest
    // envelope (read back from disk when we wrote one).
    drop(engine);
    let bytes = match checkpoints.last() {
        Some(path) => std::fs::read(path).map_err(|e| format!("checkpoint read: {e}"))?,
        None => newest.expect("kill_at >= 1 guarantees a checkpoint"),
    };
    let snapshot_bytes = bytes.len();
    ckpt_timer.restart();
    let snapshot = RunSnapshot::from_bytes(&bytes).map_err(|e| format!("snapshot: {e}"))?;
    let resumed_from = snapshot.round();
    let (mut engine, mut rng) =
        PerigeeEngine::<GeoLatencyModel>::resume(snapshot).map_err(|e| format!("resume: {e}"))?;
    ckpt_timer.lap("checkpoint_decode");
    crate::trace::record_profile("resume", seed, ckpt_timer.profile());
    // Telemetry is observational state, so `resume` starts without it;
    // reattach to keep tracing the continued run.
    crate::trace::attach(&mut engine, "resume", seed);
    stats.extend(drive_audited(
        &mut engine,
        &mut rng,
        total - kill_at,
        audit,
        out,
    )?);
    audits_run += engine.audits_run();
    audit_violations += engine
        .audit_failures()
        .iter()
        .map(|r| r.violations.len())
        .sum::<usize>();

    let bit_identical = stats == control_stats
        && engine.topology() == control.topology()
        && engine.population() == control.population()
        && engine.evaluate(scenario.coverage) == control.evaluate(scenario.coverage);
    let joined = stats.iter().map(|s| s.joined).sum();
    let departed = stats.iter().map(|s| s.departed).sum();
    Ok(KillResumeResult {
        total_rounds: total,
        kill_at,
        resumed_from,
        snapshot_bytes,
        checkpoints,
        bit_identical,
        audits_run,
        audit_violations,
        joined,
        departed,
    })
}

/// Outcome of [`resume_from_file`].
#[derive(Debug, Clone)]
pub struct ResumeRunResult {
    /// Round recorded in the loaded snapshot.
    pub resumed_from: u64,
    /// Envelope size on disk, in bytes.
    pub snapshot_bytes: usize,
    /// Per-round stats of the continued run.
    pub stats: Vec<RoundStats>,
    /// Auditor passes over the continued run.
    pub audits_run: usize,
    /// Violations the auditor reported (0 on a healthy snapshot).
    pub audit_violations: usize,
}

/// The recovery path: load an envelope from `path`, resume, and run
/// `rounds` more rounds under the auditor. Corruption anywhere — magic,
/// version, content hash, body, semantic consistency — surfaces as the
/// structured [`SnapshotError`] rendered into the error string, never a
/// panic.
pub fn resume_from_file(
    path: &Path,
    rounds: usize,
    audit: AuditOptions,
    out: Option<&Path>,
) -> Result<ResumeRunResult, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut ckpt_timer = PhaseTimer::new(crate::trace::installed().is_some());
    let snapshot =
        RunSnapshot::from_bytes(&bytes).map_err(|e: SnapshotError| format!("snapshot: {e}"))?;
    let resumed_from = snapshot.round();
    let (mut engine, mut rng) =
        PerigeeEngine::<GeoLatencyModel>::resume(snapshot).map_err(|e| format!("resume: {e}"))?;
    ckpt_timer.lap("checkpoint_decode");
    crate::trace::record_profile("resume-from-file", resumed_from, ckpt_timer.profile());
    crate::trace::attach(&mut engine, "resume-from-file", resumed_from);
    let stats = drive_audited(&mut engine, &mut rng, rounds, audit, out)?;
    Ok(ResumeRunResult {
        resumed_from,
        snapshot_bytes: bytes.len(),
        audits_run: engine.audits_run(),
        audit_violations: engine
            .audit_failures()
            .iter()
            .map(|r| r.violations.len())
            .sum(),
        stats,
    })
}
