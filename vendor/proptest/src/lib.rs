//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property suites use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range / tuple /
//! [`collection::vec`] / [`any`] strategies, [`Strategy::prop_flat_map`] /
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are sampled from a generator seeded deterministically by the
//!   test name and case index — every run explores the same inputs;
//! * there is **no shrinking**: a failure reports the case index and the
//!   assertion message, not a minimized input.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected (kept for API parity; unused here).
    Reject(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Derives a new strategy from each generated value (dependent
    /// generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps each generated value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        let inner = (self.f)(self.base.new_value(rng));
        inner.new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )+};
}
arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.gen::<f64>() * 1e12;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// The canonical strategy for `T` (uniform over the value domain).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every test
    // explores a distinct but fully deterministic input sequence.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Declares deterministic sampling-based property tests.
///
/// Supports the classic form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(0.0f64..1.0, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition, failing the current case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality, failing the current case on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Asserts inequality, failing the current case on violation.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn case_rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::__case_rng("t", 3);
        let mut b = crate::__case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::__case_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5.0f64..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_the_range(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn flat_map_threads_dependencies(
            (n, v) in (1usize..10).prop_flat_map(|n| {
                (crate::Just(n), crate::collection::vec(0.0f64..1.0, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn tuple_and_any_compose((a, b, flag) in (any::<u8>(), 0u8..9, any::<bool>())) {
            prop_assert!(b < 9);
            let _ = (a, flag);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            #[allow(unreachable_code)]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
