//! Streaming quantile estimation (the P² algorithm).
//!
//! The exact [`percentile`](crate::percentile) definition needs the full
//! multiset in memory; per-round λ-curve tracking over long dynamic-world
//! runs wants a constant-space estimate instead. [`P2Quantile`] implements
//! the P² algorithm of Jain & Chlamtac (CACM 1985): five markers whose
//! heights approximate `(min, p/2, p, (1+p)/2, max)` quantiles are nudged
//! toward their desired rank positions with a piecewise-parabolic update
//! on every observation — O(1) memory and time per sample, no sorting.
//!
//! Two departures from the textbook algorithm keep it consistent with this
//! crate's percentile conventions:
//!
//! * until five *finite* samples have arrived, the estimate is the exact
//!   [`percentile`](crate::percentile) of the buffered samples (the P²
//!   marker invariants need five points to initialize);
//! * infinite observations — the `t = ∞` "never delivered/covered"
//!   convention — are counted out-of-band instead of being fed to the
//!   marker update (a parabolic step over `∞` yields `NaN`): the
//!   estimate is `+∞` exactly when the requested rank lands in the
//!   infinite tail, mirroring [`percentile`](crate::percentile)'s
//!   treatment, and the finite quantile estimate is returned otherwise.
//!   The finite-side rank is approximated by the marker state, so mixed
//!   streams are estimates twice over — fine for tracking, not for
//!   scoring.
//!
//! Like everything in this crate the estimator is deterministic: the same
//! observation sequence produces bit-identical marker states on any
//! thread.

use crate::percentile::percentile_mut;

/// Constant-space streaming estimator of a single quantile.
///
/// # Examples
///
/// ```
/// use perigee_metrics::P2Quantile;
///
/// let mut q = P2Quantile::new(50.0);
/// for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
///     q.observe(x);
/// }
/// assert_eq!(q.estimate(), Some(3.0)); // exact while ≤ 5 samples
/// for x in 0..1000 {
///     q.observe(f64::from(x % 100));
/// }
/// let est = q.estimate().unwrap();
/// assert!((est - 49.5).abs() < 5.0, "median estimate {est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    /// Requested percentile in `[0, 100]`.
    p: f64,
    /// Marker heights `q₀..q₄` (valid once `initialized`).
    heights: [f64; 5],
    /// Actual marker positions `n₀..n₄` (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions `n′₀..n′₄`.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// The first finite samples, buffered until the markers initialize.
    seed: Vec<f64>,
    /// Finite observations so far.
    finite: usize,
    /// Infinite observations so far (kept out of the marker state).
    infinite: usize,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-th percentile (`0 ≤ p ≤ 100` —
    /// the same convention as [`percentile`](crate::percentile)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let f = p / 100.0;
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * f, 1.0 + 4.0 * f, 3.0 + 2.0 * f, 5.0],
            increments: [0.0, f / 2.0, f, (1.0 + f) / 2.0, 1.0],
            seed: Vec::with_capacity(5),
            finite: 0,
            infinite: 0,
        }
    }

    /// The percentile this estimator tracks.
    pub fn percentile(&self) -> f64 {
        self.p
    }

    /// Total observations so far (finite and infinite).
    pub fn count(&self) -> usize {
        self.finite + self.infinite
    }

    /// Feeds one observation. Infinities are legal (the `t = ∞`
    /// convention) and tracked out-of-band; see the module docs.
    ///
    /// # Panics
    ///
    /// Panics on `NaN`, like [`percentile`](crate::percentile).
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "quantile input must not contain NaN");
        if x.is_infinite() {
            self.infinite += 1;
            return;
        }
        self.finite += 1;
        if self.finite <= 5 {
            self.seed.push(x);
            if self.finite == 5 {
                self.seed.sort_unstable_by(f64::total_cmp);
                for (h, &s) in self.heights.iter_mut().zip(&self.seed) {
                    *h = s;
                }
            }
            return;
        }

        // Locate the cell k with q[k] ≤ x < q[k+1], clamping the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // One of the three interior cells; linear scan over 4 slots.
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Nudge the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let above = self.positions[i + 1] - self.positions[i];
            let below = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The piecewise-parabolic (P²) height prediction for marker `i`
    /// moved by `d ∈ {−1, +1}` ranks.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// The linear fallback used when the parabolic prediction would break
    /// the marker-height monotonicity.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before the first observation.
    ///
    /// Returns `+∞` when the requested rank lands in the infinite tail of
    /// the observed stream (matching [`percentile`](crate::percentile)'s
    /// convention for `t = ∞` observations).
    pub fn estimate(&self) -> Option<f64> {
        let total = self.finite + self.infinite;
        if total == 0 {
            return None;
        }
        if self.infinite > 0 {
            // The rank (0-based, interpolated like `percentile`) falls in
            // the infinite tail when it reaches index `finite` or when it
            // interpolates toward it from index `finite - 1`.
            let rank = self.p / 100.0 * (total - 1) as f64;
            if rank > self.finite as f64 - 1.0 {
                return Some(f64::INFINITY);
            }
        }
        if self.finite <= 5 {
            let mut buf = self.seed.clone();
            return percentile_mut(&mut buf, self.p);
        }
        Some(self.heights[2])
    }

    /// Like [`P2Quantile::estimate`] but maps the empty stream to `+∞` —
    /// the scoring convention of
    /// [`percentile_or_inf`](crate::percentile_or_inf).
    pub fn estimate_or_inf(&self) -> f64 {
        self.estimate().unwrap_or(f64::INFINITY)
    }
}

mod codec {
    //! Checkpoint codec impls (see `serde::bin`): every marker float
    //! travels as its IEEE-754 bit pattern, so a restored tracker that
    //! keeps streaming is bit-identical to one that never stopped.

    use serde::bin::{Decode, DecodeError, Encode, Reader};

    use super::P2Quantile;

    impl Encode for P2Quantile {
        fn encode(&self, out: &mut Vec<u8>) {
            self.p.encode(out);
            self.heights.encode(out);
            self.positions.encode(out);
            self.desired.encode(out);
            self.increments.encode(out);
            self.seed.encode(out);
            self.finite.encode(out);
            self.infinite.encode(out);
        }
    }

    impl Decode for P2Quantile {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let q = P2Quantile {
                p: f64::decode(r)?,
                heights: <[f64; 5]>::decode(r)?,
                positions: <[f64; 5]>::decode(r)?,
                desired: <[f64; 5]>::decode(r)?,
                increments: <[f64; 5]>::decode(r)?,
                seed: Vec::decode(r)?,
                finite: usize::decode(r)?,
                infinite: usize::decode(r)?,
            };
            if !(0.0..=100.0).contains(&q.p) {
                return Err(DecodeError::new("p2 percentile out of range"));
            }
            if q.seed.len() > 5 || (q.finite <= 5 && q.seed.len() != q.finite) {
                return Err(DecodeError::new("p2 seed buffer inconsistent with count"));
            }
            Ok(q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::percentile;

    /// Deterministic pseudo-random stream (splitmix64 over the index).
    fn noise(i: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5A5);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    }

    #[test]
    fn empty_and_small_streams_are_exact() {
        let mut q = P2Quantile::new(90.0);
        assert_eq!(q.estimate(), None);
        assert_eq!(q.estimate_or_inf(), f64::INFINITY);
        let values = [7.0, 3.0, 9.0, 1.0, 5.0];
        for (i, &x) in values.iter().enumerate() {
            q.observe(x);
            assert_eq!(
                q.estimate(),
                percentile(&values[..=i], 90.0),
                "exact while ≤ 5 samples"
            );
        }
        assert_eq!(q.count(), 5);
    }

    #[test]
    fn tracks_uniform_stream_within_tolerance() {
        for p in [50.0, 90.0, 99.0] {
            let mut q = P2Quantile::new(p);
            let exact: Vec<f64> = (0..5000).map(noise).collect();
            for &x in &exact {
                q.observe(x);
            }
            let truth = percentile(&exact, p).unwrap();
            let est = q.estimate().unwrap();
            assert!(
                (est - truth).abs() < 0.02,
                "p{p}: estimate {est} vs exact {truth}"
            );
        }
    }

    #[test]
    fn tracks_skewed_stream_within_tolerance() {
        // Long-tailed (exponential-ish) stream — the λ90 shape.
        let mut q = P2Quantile::new(90.0);
        let exact: Vec<f64> = (0..4000)
            .map(|i| -200.0 * (1.0 - noise(i)).max(f64::MIN_POSITIVE).ln())
            .collect();
        for &x in &exact {
            q.observe(x);
        }
        let truth = percentile(&exact, 90.0).unwrap();
        let est = q.estimate().unwrap();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "estimate {est} vs exact {truth}"
        );
    }

    #[test]
    fn sorted_and_reversed_streams_agree_with_exact() {
        let mut asc = P2Quantile::new(75.0);
        let mut desc = P2Quantile::new(75.0);
        let exact: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        for &x in &exact {
            asc.observe(x);
        }
        for &x in exact.iter().rev() {
            desc.observe(x);
        }
        let truth = percentile(&exact, 75.0).unwrap();
        for est in [asc.estimate().unwrap(), desc.estimate().unwrap()] {
            assert!(
                (est - truth).abs() / truth < 0.05,
                "estimate {est} vs exact {truth}"
            );
        }
    }

    #[test]
    fn infinite_tail_dominates_when_rank_touches_it() {
        // 15% infinite: p90 lands in the tail (like the exact definition).
        let mut q = P2Quantile::new(90.0);
        for i in 0..850 {
            q.observe(noise(i));
        }
        for _ in 0..150 {
            q.observe(f64::INFINITY);
        }
        assert_eq!(q.estimate(), Some(f64::INFINITY));
        // ...but the median stays finite on the same stream.
        let mut med = P2Quantile::new(50.0);
        for i in 0..850 {
            med.observe(noise(i));
        }
        for _ in 0..150 {
            med.observe(f64::INFINITY);
        }
        assert!(med.estimate().unwrap().is_finite());
    }

    #[test]
    fn few_infinities_do_not_poison_the_estimate() {
        let mut q = P2Quantile::new(90.0);
        for i in 0..950 {
            q.observe(noise(i));
        }
        for _ in 0..50 {
            q.observe(f64::INFINITY);
        }
        let est = q.estimate().unwrap();
        assert!(
            est.is_finite(),
            "5% infinite must keep p90 finite, got {est}"
        );
    }

    #[test]
    fn all_infinite_is_infinite() {
        let mut q = P2Quantile::new(50.0);
        for _ in 0..10 {
            q.observe(f64::INFINITY);
        }
        assert_eq!(q.estimate(), Some(f64::INFINITY));
    }

    #[test]
    fn determinism_same_stream_same_state() {
        let mut a = P2Quantile::new(90.0);
        let mut b = P2Quantile::new(90.0);
        for i in 0..500 {
            a.observe(noise(i));
            b.observe(noise(i));
        }
        assert_eq!(a, b);
        assert_eq!(
            a.estimate().unwrap().to_bits(),
            b.estimate().unwrap().to_bits()
        );
    }

    #[test]
    fn snapshot_roundtrip_continues_identically() {
        use serde::bin::{Decode, Encode};
        // Serialize → restore → continue streaming must match an unbroken
        // tracker exactly, at every cut point: mid-seed (< 5 finite),
        // exactly at initialization, and deep into the marker regime —
        // with infinities mixed in (the out-of-band counter must travel).
        for cut in [0usize, 3, 5, 6, 250] {
            let mut unbroken = P2Quantile::new(90.0);
            let mut prefix = P2Quantile::new(90.0);
            let stream = |i: u64| {
                if i.is_multiple_of(13) {
                    f64::INFINITY
                } else {
                    noise(i)
                }
            };
            for i in 0..cut as u64 {
                unbroken.observe(stream(i));
                prefix.observe(stream(i));
            }
            let mut resumed = P2Quantile::from_bytes(&prefix.to_bytes()).unwrap();
            assert_eq!(resumed, prefix, "cut {cut}: restored state differs");
            for i in cut as u64..600 {
                unbroken.observe(stream(i));
                resumed.observe(stream(i));
            }
            assert_eq!(resumed, unbroken, "cut {cut}: streams diverged");
            assert_eq!(
                resumed.estimate_or_inf().to_bits(),
                unbroken.estimate_or_inf().to_bits(),
                "cut {cut}: estimates differ"
            );
        }
    }

    #[test]
    fn snapshot_rejects_corrupted_bytes() {
        use serde::bin::{Decode, Encode};
        let mut q = P2Quantile::new(75.0);
        for i in 0..10 {
            q.observe(noise(i));
        }
        let bytes = q.to_bytes();
        assert!(P2Quantile::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_p = bytes.clone();
        // First field is `p`; overwrite with the bits of 400.0.
        bad_p[..8].copy_from_slice(&400.0f64.to_bits().to_le_bytes());
        assert!(P2Quantile::from_bytes(&bad_p).is_err());
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_observation_panics() {
        P2Quantile::new(50.0).observe(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        let _ = P2Quantile::new(-1.0);
    }
}
