//! Figure 3: delay curves for all seven algorithms.
//!
//! (a) uniform hash power; (b) exponential hash power. The paper's headline:
//! Perigee-Subset ≈33% and Perigee-UCB ≈11% lower delay than random;
//! geographic beats random but trails Subset by ≈40% at the median node;
//! Kademlia is slightly worse than geographic; the fully-connected "ideal"
//! lower-bounds everything.

use perigee_metrics::{DelayCurve, Table};

use crate::runner::{run_parallel, Algorithm, RunOutput};
use crate::scenario::Scenario;

/// One algorithm's aggregated result.
#[derive(Debug, Clone)]
pub struct AlgorithmResult {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Per-seed outputs.
    pub runs: Vec<RunOutput>,
    /// Pointwise-mean λ(90%) curve over seeds (the plotted line).
    pub mean90: DelayCurve,
    /// Pointwise-mean λ(50%) curve over seeds.
    pub mean50: DelayCurve,
}

impl AlgorithmResult {
    /// Error bar (std over seeds) at a node index, `None` with one seed.
    pub fn error_bar_at(&self, index: usize) -> Option<f64> {
        let curves: Vec<DelayCurve> = self.runs.iter().map(|r| r.curve90.clone()).collect();
        DelayCurve::pointwise_std(&curves, index)
    }
}

/// The full figure: one result per algorithm.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Results in [`Algorithm::FIG3`] order.
    pub results: Vec<AlgorithmResult>,
    /// The scenario that was run.
    pub scenario: Scenario,
}

impl Fig3Result {
    /// The result for one algorithm.
    pub fn get(&self, algorithm: Algorithm) -> &AlgorithmResult {
        self.results
            .iter()
            .find(|r| r.algorithm == algorithm)
            .expect("all FIG3 algorithms present")
    }

    /// Median-node improvement of `a` over `b` (positive = `a` faster).
    pub fn improvement(&self, a: Algorithm, b: Algorithm) -> f64 {
        self.get(a).mean90.improvement_over(&self.get(b).mean90)
    }

    /// Renders the paper-style summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "algorithm".into(),
            "median λ90 (ms)".into(),
            "mean λ90 (ms)".into(),
            "median λ50 (ms)".into(),
            "vs random".into(),
            "err@median".into(),
        ]);
        let random_median = self.get(Algorithm::Random).mean90.median();
        for r in &self.results {
            let median = r.mean90.median();
            let improvement = if random_median > 0.0 {
                (random_median - median) / random_median * 100.0
            } else {
                0.0
            };
            let mid = r.mean90.len() / 2;
            let err = r
                .error_bar_at(mid)
                .map_or("-".to_string(), |e| format!("{e:.1}"));
            t.row(vec![
                r.algorithm.name().into(),
                format!("{median:.1}"),
                format!("{:.1}", r.mean90.mean()),
                format!("{:.1}", r.mean50.median()),
                format!("{improvement:+.1}%"),
                err,
            ]);
        }
        t
    }
}

/// Runs the figure over the scenario (3(a) with the default scenario,
/// 3(b) with [`Scenario::with_exponential_hash_power`]).
pub fn run(scenario: &Scenario) -> Fig3Result {
    let jobs: Vec<(Algorithm, u64)> = Algorithm::FIG3
        .iter()
        .flat_map(|&a| scenario.seeds.iter().map(move |&s| (a, s)))
        .collect();
    let outputs = run_parallel(jobs, scenario);

    let results = Algorithm::FIG3
        .iter()
        .map(|&algorithm| {
            let runs: Vec<RunOutput> = outputs
                .iter()
                .filter(|o| o.algorithm == algorithm)
                .cloned()
                .collect();
            let mean90 = DelayCurve::pointwise_mean(
                &runs.iter().map(|r| r.curve90.clone()).collect::<Vec<_>>(),
            );
            let mean50 = DelayCurve::pointwise_mean(
                &runs.iter().map(|r| r.curve50.clone()).collect::<Vec<_>>(),
            );
            AlgorithmResult {
                algorithm,
                runs,
                mean90,
                mean50,
            }
        })
        .collect();

    Fig3Result {
        results,
        scenario: scenario.clone(),
    }
}

/// Writes the per-node curves (the actual figure series) as CSV:
/// `node_index, <one column per algorithm>`.
pub fn curves_csv(result: &Fig3Result) -> Table {
    let mut headers = vec!["node".to_string()];
    headers.extend(
        result
            .results
            .iter()
            .map(|r| r.algorithm.name().to_string()),
    );
    let mut t = Table::new(headers);
    let n = result.results[0].mean90.len();
    for i in 0..n {
        let mut row = vec![i.to_string()];
        row.extend(
            result
                .results
                .iter()
                .map(|r| format!("{:.2}", r.mean90.value_at(i))),
        );
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_holds_at_small_scale() {
        let scenario = Scenario {
            nodes: 120,
            rounds: 6,
            blocks_per_round: 20,
            seeds: vec![5],
            ..Scenario::paper()
        };
        let result = run(&scenario);
        assert_eq!(result.results.len(), 7);

        // The two robust shape constraints at any scale:
        // ideal is the lower bound...
        let ideal = result.get(Algorithm::Ideal).mean90.median();
        for r in &result.results {
            assert!(
                r.mean90.median() >= ideal - 1e-9,
                "{} beat the ideal bound",
                r.algorithm
            );
        }
        // ...and Perigee-Subset improves on random.
        assert!(
            result.improvement(Algorithm::PerigeeSubset, Algorithm::Random) > 0.0,
            "subset must beat random"
        );

        let table = result.table();
        assert_eq!(table.len(), 7);
        let csv = curves_csv(&result);
        assert_eq!(csv.len(), 120);
    }

    /// The paper's fig-3 conclusions survive swapping the dense
    /// observation matrix for 48-byte per-edge sketches: the ideal
    /// full mesh still lower-bounds every algorithm, and Perigee-Subset
    /// still beats the static random topology.
    #[test]
    fn fig3_conclusions_hold_with_sketch_observations() {
        let scenario = Scenario {
            nodes: 120,
            rounds: 6,
            blocks_per_round: 20,
            seeds: vec![5],
            ..Scenario::paper()
        }
        .with_sketch_observations();
        let result = run(&scenario);
        let ideal = result.get(Algorithm::Ideal).mean90.median();
        for r in &result.results {
            assert!(
                r.mean90.median() >= ideal - 1e-9,
                "{} beat the ideal bound under sketches",
                r.algorithm
            );
        }
        assert!(
            result.improvement(Algorithm::PerigeeSubset, Algorithm::Random) > 0.0,
            "subset must beat random under sketches"
        );
    }
}
