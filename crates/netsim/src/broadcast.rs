//! Fast block-propagation engine.
//!
//! Under the paper's network model (§2.1) a block mined by `s` floods the
//! overlay: every node, upon *first* receiving the block, validates it for
//! `Δu` and then relays it to every neighbor `v`, the relay taking
//! `δ(u,v)`. First-arrival times are therefore exactly a shortest-path
//! computation with edge weight `δ(u,v)` plus node weight `Δu` at every
//! intermediate relay — computed here with Dijkstra's algorithm.
//!
//! The engine also exposes, for every node `v` and neighbor `u`, the time
//! `tᵇu,v` at which `u` delivered (or would deliver) the block to `v` —
//! the raw measurements Perigee's observation sets are built from.

use crate::graph::Topology;
use crate::latency::LatencyModel;
use crate::node::NodeId;
use crate::population::Population;
use crate::time::SimTime;
use crate::view::{coverage_scan, BroadcastScratch, TopologyView};

/// The outcome of flooding a single block from a source.
///
/// # Examples
///
/// ```
/// use perigee_netsim::{
///     broadcast, ConnectionLimits, GeoLatencyModel, NodeId, PopulationBuilder, Topology,
/// };
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let pop = PopulationBuilder::new(3).build(&mut rng).unwrap();
/// let lat = GeoLatencyModel::new(&pop, 0);
/// let mut topo = Topology::new(3, ConnectionLimits::paper_default());
/// topo.connect(NodeId::new(0), NodeId::new(1))?;
/// topo.connect(NodeId::new(1), NodeId::new(2))?;
///
/// let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
/// assert_eq!(prop.arrival(NodeId::new(0)), perigee_netsim::SimTime::ZERO);
/// assert!(prop.arrival(NodeId::new(2)) > prop.arrival(NodeId::new(1)));
/// # Ok::<(), perigee_netsim::ConnectError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Propagation {
    source: NodeId,
    arrival: Vec<SimTime>,
    relay_at: Vec<SimTime>,
}

impl Propagation {
    /// Assembles a propagation from raw per-node times (used by the view
    /// engine to hand over scratch buffers without copying).
    pub(crate) fn from_parts(
        source: NodeId,
        arrival: Vec<SimTime>,
        relay_at: Vec<SimTime>,
    ) -> Self {
        Propagation {
            source,
            arrival,
            relay_at,
        }
    }

    /// The miner of the block.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// First-arrival time of the block at `v` (`ZERO` at the source,
    /// `INFINITY` if unreachable).
    #[inline]
    pub fn arrival(&self, v: NodeId) -> SimTime {
        self.arrival[v.index()]
    }

    /// All first-arrival times, indexed by node.
    #[inline]
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrival
    }

    /// The time at which `u` begins relaying the block to its neighbors
    /// (`INFINITY` for non-relaying nodes or unreachable ones).
    #[inline]
    pub fn relay_start(&self, u: NodeId) -> SimTime {
        self.relay_at[u.index()]
    }

    /// The time at which neighbor `u` delivers (or would deliver) the block
    /// to `v`: `relay_start(u) + δ(u,v)`. This is the paper's `tᵇu,v`.
    #[inline]
    pub fn delivery<L: LatencyModel + ?Sized>(&self, latency: &L, u: NodeId, v: NodeId) -> SimTime {
        let r = self.relay_at[u.index()];
        if r.is_infinite() {
            SimTime::INFINITY
        } else {
            r + latency.delay(u, v)
        }
    }

    /// Number of nodes that received the block.
    pub fn reached(&self) -> usize {
        self.arrival.iter().filter(|t| t.is_finite()).count()
    }

    /// The time by which nodes holding at least `fraction` of total hash
    /// power have the block (`λv` of §2.2 when `fraction = 0.9`), or
    /// `INFINITY` if never.
    ///
    /// When several fractions are needed from the same flood, prefer
    /// [`Propagation::coverage_times`], which sorts the weighted arrivals
    /// once instead of once per call.
    pub fn coverage_time(&self, population: &Population, fraction: f64) -> SimTime {
        self.coverage_times(population, &[fraction])[0]
    }

    /// Computes λ(fraction) for every entry of `fractions` from a single
    /// sort of the weighted arrivals (the engine reads both λ50 and λ90
    /// per block).
    pub fn coverage_times(&self, population: &Population, fractions: &[f64]) -> Vec<SimTime> {
        let mut weighted: Vec<(SimTime, f64)> = self
            .arrival
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, population.hash_power(NodeId::new(i as u32))))
            .collect();
        weighted.sort_unstable_by_key(|&(t, _)| t);
        fractions
            .iter()
            .map(|&f| coverage_scan(&weighted, f))
            .collect()
    }
}

/// Floods one block from `source` over `topology` and returns all arrival
/// and relay times.
///
/// Behavioural deviations are honoured: [`Behavior`](crate::Behavior)
/// `Silent` nodes receive but never relay; `Delay` nodes add their extra
/// delay before relaying. The miner relays its own block without
/// validating it; every other node validates (`Δu`) between first receipt
/// and relaying.
///
/// This is a thin convenience wrapper that snapshots a [`TopologyView`] on
/// the fly and floods once through it. When flooding many blocks over one
/// topology (the engine's round loop, static evaluations), build the view
/// once and reuse a [`BroadcastScratch`] instead — same results, bit for
/// bit, with zero allocation per block.
pub fn broadcast<L: LatencyModel + ?Sized>(
    topology: &Topology,
    latency: &L,
    population: &Population,
    source: NodeId,
) -> Propagation {
    debug_assert_eq!(
        topology.len(),
        population.len(),
        "topology and population must agree"
    );
    let view = TopologyView::new(topology, latency, population);
    let mut scratch = BroadcastScratch::with_capacity(topology.len());
    view.broadcast_into(source, &mut scratch);
    scratch.into_propagation()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConnectionLimits;
    use crate::latency::MetricLatencyModel;
    use crate::node::{Behavior, NodeProfile};
    use crate::population::Population;

    /// A tiny deterministic world: nodes on a line at given 1-d coords,
    /// unit scale (so delay in ms equals coordinate distance).
    fn line_world(coords: &[f64], validation_ms: f64) -> (Population, MetricLatencyModel) {
        let profiles: Vec<NodeProfile> = coords
            .iter()
            .map(|&x| NodeProfile {
                coords: vec![x],
                hash_power: 1.0,
                validation_delay: SimTime::from_ms(validation_ms),
                ..NodeProfile::default()
            })
            .collect();
        let pop = Population::from_profiles(profiles).unwrap();
        let lat = MetricLatencyModel::new(&pop, 1.0);
        (pop, lat)
    }

    fn path_topology(n: usize) -> Topology {
        let mut t = Topology::new(n, ConnectionLimits::unlimited());
        for i in 0..n - 1 {
            t.connect(NodeId::new(i as u32), NodeId::new(i as u32 + 1))
                .unwrap();
        }
        t
    }

    #[test]
    fn line_arrival_times_are_exact() {
        // Nodes at 0, 10, 30; validation 5ms; source node 0.
        let (pop, lat) = line_world(&[0.0, 10.0, 30.0], 5.0);
        let topo = path_topology(3);
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        // miner relays immediately: node1 at 10; node1 validates 5 then
        // relays: node2 at 10+5+20 = 35.
        assert_eq!(prop.arrival(NodeId::new(0)).as_ms(), 0.0);
        assert_eq!(prop.arrival(NodeId::new(1)).as_ms(), 10.0);
        assert_eq!(prop.arrival(NodeId::new(2)).as_ms(), 35.0);
        assert_eq!(prop.reached(), 3);
    }

    #[test]
    fn delivery_times_cover_all_neighbors_even_late_ones() {
        let (pop, lat) = line_world(&[0.0, 10.0, 30.0], 5.0);
        let mut topo = path_topology(3);
        // Triangle: also connect 0-2 directly.
        topo.connect(NodeId::new(0), NodeId::new(2)).unwrap();
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        // node2 hears directly from the miner at 30.
        assert_eq!(prop.arrival(NodeId::new(2)).as_ms(), 30.0);
        // ...but node1 would still deliver to node2 at 10+5+20 = 35.
        let t12 = prop.delivery(&lat, NodeId::new(1), NodeId::new(2));
        assert_eq!(t12.as_ms(), 35.0);
        // And node2 (validating at 30+5) would deliver back to node1 at 55.
        let t21 = prop.delivery(&lat, NodeId::new(2), NodeId::new(1));
        assert_eq!(t21.as_ms(), 55.0);
    }

    #[test]
    fn silent_node_blocks_the_path() {
        let (mut pop, lat) = line_world(&[0.0, 10.0, 30.0], 5.0);
        pop.profile_mut(NodeId::new(1)).behavior = Behavior::Silent;
        let topo = path_topology(3);
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        assert_eq!(prop.arrival(NodeId::new(1)).as_ms(), 10.0);
        assert!(prop.arrival(NodeId::new(2)).is_infinite());
        assert!(prop.relay_start(NodeId::new(1)).is_infinite());
        assert_eq!(prop.reached(), 2);
        assert!(prop
            .delivery(&lat, NodeId::new(1), NodeId::new(2))
            .is_infinite());
    }

    #[test]
    fn delaying_node_slows_the_path() {
        let (mut pop, lat) = line_world(&[0.0, 10.0, 30.0], 5.0);
        pop.profile_mut(NodeId::new(1)).behavior = Behavior::Delay(SimTime::from_ms(100.0));
        let topo = path_topology(3);
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        assert_eq!(prop.arrival(NodeId::new(2)).as_ms(), 135.0);
    }

    #[test]
    fn silent_miner_never_shares_its_block() {
        let (mut pop, lat) = line_world(&[0.0, 10.0], 5.0);
        pop.profile_mut(NodeId::new(0)).behavior = Behavior::Silent;
        let topo = path_topology(2);
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        assert!(prop.arrival(NodeId::new(1)).is_infinite());
    }

    #[test]
    fn coverage_time_uses_hash_power_weights() {
        // Node powers: 0.5, 0.25, 0.25. Arrivals 0, 10, 35.
        let (pop, lat) = line_world(&[0.0, 10.0, 30.0], 5.0);
        let mut profiles: Vec<NodeProfile> = pop.iter().cloned().collect();
        profiles[0].hash_power = 0.5;
        profiles[1].hash_power = 0.25;
        profiles[2].hash_power = 0.25;
        let pop = Population::from_profiles(profiles).unwrap();
        let topo = path_topology(3);
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        // 50% covered instantly by the miner itself.
        assert_eq!(prop.coverage_time(&pop, 0.5).as_ms(), 0.0);
        // 75% needs node1 (t=10).
        assert_eq!(prop.coverage_time(&pop, 0.75).as_ms(), 10.0);
        // 100% needs node2 (t=35).
        assert_eq!(prop.coverage_time(&pop, 1.0).as_ms(), 35.0);
    }

    #[test]
    fn unreachable_coverage_is_infinite() {
        let (pop, lat) = line_world(&[0.0, 10.0, 30.0], 5.0);
        let mut topo = Topology::new(3, ConnectionLimits::unlimited());
        topo.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        // Node 2 isolated.
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        assert!(prop.coverage_time(&pop, 0.9).is_infinite());
        assert_eq!(prop.coverage_time(&pop, 0.6).as_ms(), 10.0);
    }

    #[test]
    fn shortest_path_beats_direct_slow_link() {
        // 0 at x=0, 1 at x=5, 2 at x=9; triangle; with zero validation the
        // direct 0->2 link (9ms) beats the two-hop (5+4=9 plus validation).
        let (pop, lat) = line_world(&[0.0, 5.0, 9.0], 3.0);
        let mut topo = path_topology(3);
        topo.connect(NodeId::new(0), NodeId::new(2)).unwrap();
        let prop = broadcast(&topo, &lat, &pop, NodeId::new(0));
        assert_eq!(prop.arrival(NodeId::new(2)).as_ms(), 9.0);
    }
}
