//! VanillaScoring (§4.2.1): independent per-neighbor percentile scores.

use rand::RngCore;

use perigee_netsim::NodeId;

use crate::observation::NodeObservations;
use crate::score::SelectionStrategy;

/// Scores each outgoing neighbor by the 90th percentile of its normalized
/// delivery times within the round and keeps the `retain_count` best.
///
/// Lower scores are better: they mean the neighbor consistently delivered
/// blocks close to the earliest delivery `v` saw. Ties break toward the
/// smaller node id, keeping rounds deterministic.
///
/// Vanilla holds no cross-round state, so churn cannot poison it: under a
/// dynamic world ([`perigee_netsim::dynamics`]) every round's scores are
/// re-learned from that round's observations alone and the default no-op
/// [`SelectionStrategy::on_world_delta`] is exactly right — only the
/// observation store (rebuilt per round on the grown snapshot) needs to
/// track the node set.
#[derive(Debug, Clone, PartialEq)]
pub struct VanillaScoring {
    retain_count: usize,
    percentile: f64,
}

impl VanillaScoring {
    /// Creates the strategy: keep `retain_count` neighbors, score at
    /// `percentile` (the paper uses 90).
    pub fn new(retain_count: usize, percentile: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percentile),
            "percentile must be in [0, 100]"
        );
        VanillaScoring {
            retain_count,
            percentile,
        }
    }

    /// The per-neighbor score: `percentile`-th percentile of `T̃u,v` —
    /// exact on the dense backend, the edge sketch's P² estimate on the
    /// sketch backend.
    pub fn score(&self, observations: &NodeObservations<'_>, u: NodeId) -> f64 {
        let mut col = Vec::new();
        match observations.index_of(u) {
            Some(i) => observations.column_percentile_or_inf(i, self.percentile, &mut col),
            None => f64::INFINITY,
        }
    }

    /// The selection itself: pure in its inputs, shared by the sequential
    /// and parallel retain paths. The per-neighbor statistic comes from
    /// [`NodeObservations::column_percentile_or_inf`] — on the dense
    /// backend that is the exact percentile over one reusable column
    /// buffer (the observation reads are borrowed strided walks over the
    /// round matrix), on the sketch backend the edge's constant-space P²
    /// estimate.
    fn select(&self, outgoing: &[NodeId], observations: NodeObservations<'_>) -> Vec<NodeId> {
        let mut col: Vec<f64> = Vec::with_capacity(observations.block_count());
        let mut scored: Vec<(f64, NodeId)> = Vec::with_capacity(outgoing.len());
        for &u in outgoing {
            let score = match observations.index_of(u) {
                Some(i) => observations.column_percentile_or_inf(i, self.percentile, &mut col),
                None => f64::INFINITY,
            };
            scored.push((score, u));
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(self.retain_count)
            .map(|(_, u)| u)
            .collect()
    }
}

impl SelectionStrategy for VanillaScoring {
    fn retain(
        &mut self,
        _v: NodeId,
        outgoing: &[NodeId],
        observations: NodeObservations<'_>,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        self.select(outgoing, observations)
    }

    fn is_stateless(&self) -> bool {
        true
    }

    fn retain_stateless(
        &self,
        _v: NodeId,
        outgoing: &[NodeId],
        observations: NodeObservations<'_>,
    ) -> Vec<NodeId> {
        self.select(outgoing, observations)
    }

    fn name(&self) -> &'static str {
        "perigee-vanilla"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigee_netsim::{
        broadcast, ConnectionLimits, MetricLatencyModel, NodeProfile, Population, SimTime, Topology,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::observation::{ObservationCollector, ObservationStore};

    /// Star world: center node 0 connected to peripherals at distances
    /// given by `dists`; block always mined at node 1 (first peripheral).
    /// Returns the round's store; the center's view is `store.node(0)`.
    fn star_observations(dists: &[f64], blocks: usize) -> ObservationStore {
        let mut coords = vec![0.0];
        coords.extend_from_slice(dists);
        let profiles: Vec<NodeProfile> = coords
            .iter()
            .map(|&x| NodeProfile {
                coords: vec![x],
                hash_power: 1.0,
                validation_delay: SimTime::from_ms(0.0),
                ..NodeProfile::default()
            })
            .collect();
        let pop = Population::from_profiles(profiles).unwrap();
        let lat = MetricLatencyModel::new(&pop, 1.0);
        let n = coords.len();
        let mut topo = Topology::new(n, ConnectionLimits::unlimited());
        for i in 1..n {
            topo.connect(NodeId::new(0), NodeId::new(i as u32)).unwrap();
        }
        let mut c = ObservationCollector::new(&topo);
        for _ in 0..blocks {
            let prop = broadcast(&topo, &lat, &pop, NodeId::new(1));
            c.record(&prop, &lat);
        }
        c.finish()
    }

    #[test]
    fn keeps_the_fastest_neighbors() {
        // Distances from the center: neighbor 1 at 5 (and the miner),
        // neighbor 2 at 50, neighbor 3 at 20.
        let store = star_observations(&[5.0, 50.0, 20.0], 10);
        let mut s = VanillaScoring::new(2, 90.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let mut rng = StdRng::seed_from_u64(0);
        let kept = s.retain(
            NodeId::new(0),
            &outgoing,
            store.node(NodeId::new(0)),
            &mut rng,
        );
        assert_eq!(kept, vec![NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn score_is_relative_to_first_delivery() {
        let store = star_observations(&[5.0, 50.0, 20.0], 3);
        let s = VanillaScoring::new(2, 90.0);
        let obs = store.node(NodeId::new(0));
        // Neighbor 1 mined every block; center hears from it at 5, from 3
        // at 5+0(validation)+... wait — all go through the center. From
        // the center's view: n1 delivers at 5 (normalized 0), n3 echoes
        // back at 5+20+20 = 45 → normalized 40, n2 at 5+50+50 → 105 → 100.
        assert_eq!(s.score(&obs, NodeId::new(1)), 0.0);
        assert_eq!(s.score(&obs, NodeId::new(3)), 40.0);
        assert_eq!(s.score(&obs, NodeId::new(2)), 100.0);
    }

    #[test]
    fn missing_neighbor_scores_infinite() {
        let store = star_observations(&[5.0], 2);
        let s = VanillaScoring::new(1, 90.0);
        assert!(s
            .score(&store.node(NodeId::new(0)), NodeId::new(99))
            .is_infinite());
    }

    #[test]
    fn retains_at_most_retain_count() {
        let store = star_observations(&[5.0, 6.0, 7.0, 8.0], 5);
        let mut s = VanillaScoring::new(2, 90.0);
        let outgoing: Vec<NodeId> = (1..5).map(NodeId::new).collect();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            s.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng
            )
            .len(),
            2
        );
    }

    #[test]
    fn fewer_neighbors_than_retain_count_keeps_all() {
        let store = star_observations(&[5.0], 2);
        let mut s = VanillaScoring::new(6, 90.0);
        let outgoing = vec![NodeId::new(1)];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            s.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng
            )
            .len(),
            1
        );
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        // Two neighbors at identical distance score identically.
        let store = star_observations(&[5.0, 10.0, 10.0], 4);
        let mut s = VanillaScoring::new(2, 90.0);
        let outgoing = vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)];
        let mut rng = StdRng::seed_from_u64(0);
        let kept = s.retain(
            NodeId::new(0),
            &outgoing,
            store.node(NodeId::new(0)),
            &mut rng,
        );
        assert_eq!(kept, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn bad_percentile_panics() {
        let _ = VanillaScoring::new(6, 142.0);
    }
}
