//! Exit-code contract of the `repro` binary: bad invocations fail fast
//! with the usage string on stderr and a non-zero status; good ones
//! exit zero. Driven through the real binary (`CARGO_BIN_EXE_repro`),
//! not a parser unit test, so the `main` wiring is covered too.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success(), "bare invocation must fail");
    assert!(
        stderr(&out).contains("usage: repro"),
        "stderr must carry the usage string, got: {}",
        stderr(&out)
    );
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success(), "unknown subcommand must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown command fig99"), "got: {err}");
    assert!(err.contains("usage: repro"), "got: {err}");
}

#[test]
fn unknown_flag_prints_usage_and_fails() {
    let out = repro(&["fig1", "--frobnicate"]);
    assert!(!out.status.success(), "unknown flag must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown flag --frobnicate"), "got: {err}");
    assert!(err.contains("usage: repro"), "got: {err}");
}

#[test]
fn flag_missing_its_value_fails() {
    let out = repro(&["fig1", "--nodes"]);
    assert!(!out.status.success(), "dangling --nodes must fail");
    assert!(stderr(&out).contains("--nodes needs a value"));
}

#[test]
fn unparsable_flag_value_fails() {
    let out = repro(&["fig1", "--rounds", "many"]);
    assert!(!out.status.success(), "non-numeric --rounds must fail");
}

#[test]
fn zero_checkpoint_interval_is_rejected() {
    let out = repro(&["resume", "--checkpoint-every", "0"]);
    assert!(!out.status.success(), "--checkpoint-every 0 must fail");
    assert!(stderr(&out).contains("--checkpoint-every must be positive"));
}

#[test]
fn corrupt_snapshot_is_a_structured_error_not_a_panic() {
    let dir = std::env::temp_dir().join("repro-cli-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.prgs");
    std::fs::write(&path, b"not a snapshot at all").unwrap();
    let out = repro(&["resume", "--quick", "--from", path.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt snapshot must fail");
    let err = stderr(&out);
    assert!(
        err.contains("bad magic"),
        "must name the structured snapshot error, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must not panic on corrupt input, got: {err}"
    );
}

#[test]
fn valid_quick_command_exits_zero() {
    let out = repro(&["fig1", "--quick", "--nodes", "40"]);
    assert!(
        out.status.success(),
        "fig1 --quick must succeed, stderr: {}",
        stderr(&out)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Figure 1"));
}

#[test]
fn quick_resume_roundtrip_exits_zero() {
    let out = repro(&[
        "resume", "--quick", "--nodes", "50", "--rounds", "8", "--blocks", "4",
    ]);
    assert!(
        out.status.success(),
        "resume --quick must succeed, stderr: {}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bit-identical"), "got: {stdout}");
}

#[test]
fn failed_csv_write_exits_nonzero() {
    // Point --out at a regular file: every CSV write inside must fail,
    // and a failed artifact write is a failed command (satellite of the
    // observability PR: no more swallowed `[csv write failed]`).
    let dir = std::env::temp_dir().join("repro-cli-csvfail");
    std::fs::create_dir_all(&dir).unwrap();
    let not_a_dir = dir.join("file-not-dir");
    std::fs::write(&not_a_dir, b"occupied").unwrap();
    let out = repro(&[
        "fig1",
        "--quick",
        "--nodes",
        "40",
        "--out",
        not_a_dir.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "failed csv write must exit nonzero");
    assert!(
        stderr(&out).contains("csv write"),
        "stderr must name the failed write, got: {}",
        stderr(&out)
    );
}

#[test]
fn trace_flag_writes_parseable_jsonl_and_trace_summarizes_it() {
    let dir = std::env::temp_dir().join("repro-cli-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.jsonl");
    let out = repro(&[
        "convergence",
        "--quick",
        "--nodes",
        "60",
        "--rounds",
        "3",
        "--blocks",
        "5",
        "--seeds",
        "7",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "traced convergence must succeed, stderr: {}",
        stderr(&out)
    );
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let mut rounds = 0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let value = perigee_telemetry::JsonValue::parse(line).expect("every line parses");
        let rec = perigee_telemetry::TraceRecord::from_json(&value).expect("record shape");
        if rec.kind == "round" {
            rounds += 1;
            assert!(!rec.phases_s.is_empty(), "round records carry phases");
            assert!(
                rec.get_counter("blocks").is_some(),
                "round records carry the block count"
            );
        }
    }
    assert_eq!(rounds, 3, "one record per engine round");

    let out = repro(&["trace", trace.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "trace summary must succeed, stderr: {}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Trace summary"), "got: {stdout}");
    assert!(stdout.contains("propagation"), "got: {stdout}");
}

#[test]
fn trace_without_a_file_fails() {
    let out = repro(&["trace"]);
    assert!(!out.status.success(), "bare trace must fail");
    assert!(stderr(&out).contains("trace needs a file"));
}

#[test]
fn unopenable_trace_output_fails_fast() {
    let out = repro(&[
        "fig1",
        "--quick",
        "--nodes",
        "40",
        "--trace",
        "/definitely/not/a/dir/run.jsonl",
    ]);
    assert!(!out.status.success(), "unopenable --trace must fail");
    assert!(stderr(&out).contains("cannot open trace output"));
}
