//! Frozen, flood-optimized topology snapshots.
//!
//! [`Topology`] is built for *mutation*: per-node `BTreeSet`s give cheap
//! connect/disconnect with deterministic iteration, but make the flood hot
//! path allocate a fresh neighbor vector per visited node and recompute
//! `δ(u,v)` (a hash + square root for the geographic model) per edge per
//! block. A [`TopologyView`] freezes the communication graph
//! (out ∪ in ∪ pinned) into CSR arrays — flat `offsets`/`edges` with the
//! per-edge latency and per-node relay profile precomputed **once** — so
//! that [`TopologyView::broadcast_into`] performs zero heap allocation and
//! zero latency-model calls per block.
//!
//! # Lifecycle
//!
//! A view is a *snapshot*: build one per round (or per static evaluation),
//! flood any number of blocks through it, drop it before mutating the
//! topology again. The engine rebuilds its view at the start of every
//! round, which keeps the §2.1 synchronous-round semantics: neighbor sets
//! and latencies are constant within a round by construction.
//!
//! # Determinism
//!
//! `broadcast_into` reproduces [`broadcast`](crate::broadcast()) **bit for
//! bit**: adjacency is stored in the same ascending-id order
//! [`Topology::neighbors`] yields, cached latencies are the exact `f64`s
//! the latency model returns, and the Dijkstra queue orders ties identically
//! — so arrival, relay and delivery times are the same IEEE-754 values
//! whichever engine computed them, on any thread.
//!
//! # Bucket quantization and determinism
//!
//! The Dijkstra frontier is a [`PackedQueue`]: either the reference
//! `BinaryHeap` or (by default) the calendar queue of [`crate::pq`],
//! selected per scratch via [`QueueKind`]. The calendar *places* a key by
//! quantizing its time into a sub-millisecond bucket but *orders* by the
//! exact packed key — `(time.to_bits(), node id)`, whose high bits are
//! the untouched IEEE-754 time — sorting each bucket before draining it.
//! Quantized placement is a coarsening of the exact order, so ascending
//! buckets refined by ascending in-bucket keys reproduce the heap's pop
//! sequence key for key: no float is rounded anywhere, ties at the exact
//! same time still break by ascending node id, and every downstream
//! arrival/relay float is bit-identical whichever queue ran (proven by
//! `tests/pq_equivalence.rs` and the pq proptests).

use crate::broadcast::Propagation;
use crate::counters::SimCounters;
use crate::dynamics::WorldDelta;
use crate::error::NetsimError;
use crate::faults::BlockFaults;
use crate::graph::Topology;
use crate::latency::LatencyModel;
use crate::node::{Behavior, NodeId};
use crate::population::{IdRemap, Population};
use crate::pq::{PackedQueue, QueueKind};
use crate::time::SimTime;

/// How a node relays once it first holds a block (resolved from
/// [`Behavior`] and the validation delay at snapshot time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RelayProfile {
    /// Validates for the given delay, then relays.
    Honest { validation: SimTime },
    /// Receives but never relays.
    Silent,
    /// Validates, then waits `extra` before relaying.
    Delayed { validation: SimTime, extra: SimTime },
}

impl RelayProfile {
    #[inline]
    pub(crate) fn relay_time(self, t: SimTime, is_miner: bool) -> SimTime {
        match self {
            RelayProfile::Honest { validation } => {
                if is_miner {
                    t
                } else {
                    t + validation
                }
            }
            RelayProfile::Silent => SimTime::INFINITY,
            RelayProfile::Delayed { validation, extra } => {
                let validated = if is_miner { t } else { t + validation };
                validated + extra
            }
        }
    }
}

/// A frozen CSR snapshot of a [`Topology`] with per-edge latencies and
/// per-node relay profiles precomputed.
///
/// # Examples
///
/// ```
/// use perigee_netsim::{
///     broadcast, BroadcastScratch, ConnectionLimits, GeoLatencyModel, NodeId,
///     PopulationBuilder, Topology, TopologyView,
/// };
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pop = PopulationBuilder::new(50).build(&mut rng).unwrap();
/// let lat = GeoLatencyModel::new(&pop, 1);
/// let mut topo = Topology::new(50, ConnectionLimits::paper_default());
/// for i in 0..50u32 {
///     topo.connect(NodeId::new(i), NodeId::new((i + 1) % 50))?;
/// }
///
/// let view = TopologyView::new(&topo, &lat, &pop);
/// let mut scratch = BroadcastScratch::new();
/// view.broadcast_into(NodeId::new(0), &mut scratch);
/// // Bit-identical to the legacy engine.
/// let legacy = broadcast(&topo, &lat, &pop, NodeId::new(0));
/// assert_eq!(scratch.arrivals(), legacy.arrivals());
/// # Ok::<(), perigee_netsim::ConnectError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyView {
    /// CSR row starts: node `u`'s adjacency is `edges[offsets[u]..offsets[u+1]]`.
    pub(crate) offsets: Vec<usize>,
    /// Neighbor ids, ascending within each node (the [`Topology::neighbors`] order).
    pub(crate) edges: Vec<u32>,
    /// `δ(u, edges[e])` for every directed adjacency entry, cached once.
    pub(crate) delay: Vec<SimTime>,
    /// `reverse[e]` is the index of the opposite directed entry: for
    /// `e = (u → v)`, `edges[reverse[e]] == u` and `reverse[e]` lies in
    /// `v`'s row. The communication graph (out ∪ in ∪ pinned) is symmetric
    /// by construction, so every entry has an opposite.
    pub(crate) reverse: Vec<u32>,
    /// Per-node relay profile (validation delay + behavior).
    pub(crate) relay: Vec<RelayProfile>,
    /// Per-node hash power `fv` (for coverage times).
    pub(crate) hash_power: Vec<f64>,
    /// Per-node access uplink (Mbit/s), for bandwidth-limited transfers.
    pub(crate) uplink_mbps: Vec<f64>,
    /// Per-node access downlink (Mbit/s), for bandwidth-limited transfers.
    pub(crate) downlink_mbps: Vec<f64>,
    /// When every node holds bit-identical hash power (the paper's default
    /// uniform setting), coverage times reduce to an order statistic of
    /// the arrivals — computed by selection instead of a full sort.
    pub(crate) uniform_weight: Option<f64>,
}

impl TopologyView {
    /// Snapshots `topology` with latencies from `latency` and relay
    /// profiles from `population`.
    ///
    /// Cost: one `δ(u,v)` evaluation per directed edge — paid once instead
    /// of once per block.
    ///
    /// # Panics
    ///
    /// Panics if the topology, latency model and population disagree on
    /// the node count, or if the world exceeds the message-level engine's
    /// 2^30 packed-payload cap ([`TopologyView::try_new`] returns the
    /// structured error instead).
    pub fn new<L: LatencyModel + ?Sized>(
        topology: &Topology,
        latency: &L,
        population: &Population,
    ) -> Self {
        match Self::try_new(topology, latency, population) {
            Ok(view) => view,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`TopologyView::new`]: snapshots the world, rejecting one
    /// whose node count or directed-edge count is at or beyond the 2^30
    /// packed-event payload cap
    /// ([`PACKED_PAYLOAD_CAP`](crate::gossip::PACKED_PAYLOAD_CAP)) with
    /// [`NetsimError::WorldTooLarge`] instead of letting the gossip
    /// engine's packed `u128` event words silently corrupt in release
    /// builds. Incremental growth is guarded too:
    /// [`TopologyView::apply_rewiring`] and
    /// [`TopologyView::apply_world_delta`] panic rather than grow a
    /// snapshot past the cap.
    ///
    /// # Errors
    ///
    /// [`NetsimError::WorldTooLarge`] when the cap is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the topology, latency model and population disagree on
    /// the node count.
    pub fn try_new<L: LatencyModel + ?Sized>(
        topology: &Topology,
        latency: &L,
        population: &Population,
    ) -> Result<Self, NetsimError> {
        let n = topology.len();
        assert_eq!(n, population.len(), "topology and population must agree");
        assert_eq!(n, latency.len(), "topology and latency model must agree");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        let mut delay = Vec::new();
        offsets.push(0);
        for i in 0..n as u32 {
            let u = NodeId::new(i);
            for v in topology.neighbors(u) {
                edges.push(v.as_u32());
                delay.push(latency.delay(u, v));
            }
            offsets.push(edges.len());
        }
        let mut reverse = vec![0u32; edges.len()];
        for u in 0..n {
            for e in offsets[u]..offsets[u + 1] {
                let v = edges[e] as usize;
                let row = &edges[offsets[v]..offsets[v + 1]];
                let k = row
                    .binary_search(&(u as u32))
                    .expect("communication graph is symmetric");
                reverse[e] = (offsets[v] + k) as u32;
            }
        }
        if n >= crate::gossip::PACKED_PAYLOAD_CAP
            || edges.len() >= crate::gossip::PACKED_PAYLOAD_CAP
        {
            return Err(NetsimError::WorldTooLarge {
                nodes: n,
                directed_edges: edges.len(),
            });
        }
        let (relay, hash_power, uplink_mbps, downlink_mbps, uniform_weight) =
            node_attributes(population);
        Ok(TopologyView {
            offsets,
            edges,
            delay,
            reverse,
            relay,
            hash_power,
            uplink_mbps,
            downlink_mbps,
            uniform_weight,
        })
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the snapshot covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed adjacency entries (twice the undirected
    /// edge count).
    #[inline]
    pub fn directed_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `u`'s communication neighbors as raw ids, ascending — exactly
    /// [`Topology::neighbors`] at snapshot time.
    #[inline]
    pub fn neighbors_raw(&self, u: NodeId) -> &[u32] {
        &self.edges[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// The CSR row-start array: node `u`'s adjacency entries occupy
    /// directed-edge indices `csr_offsets()[u]..csr_offsets()[u + 1]`.
    /// Length is `len() + 1`. This index space addresses all per-edge
    /// data — the view's cached delays, the gossip delivery matrix, and
    /// the flat observation store built on top of the view.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat neighbor-id array underlying every CSR row, aligned with
    /// [`TopologyView::csr_offsets`].
    #[inline]
    pub fn csr_edges(&self) -> &[u32] {
        &self.edges
    }

    /// The cached per-directed-edge latencies, aligned with
    /// [`TopologyView::csr_edges`].
    #[inline]
    pub fn csr_delays(&self) -> &[SimTime] {
        &self.delay
    }

    /// The reverse-edge map, aligned with [`TopologyView::csr_edges`]:
    /// `csr_reverse()[e]` is the directed-edge index of the opposite
    /// direction of edge `e` (an entry in the target node's row). This is
    /// the index a link-fault lens must be consulted with to replay the
    /// announcement that *arrived over* edge `e`'s link: the announcer
    /// crossed `reverse[e]`, not `e`.
    #[inline]
    pub fn csr_reverse(&self) -> &[u32] {
        &self.reverse
    }

    /// The range of directed-edge indices forming `u`'s CSR row — the
    /// index space of per-edge data such as the gossip engine's delivery
    /// matrix ([`GossipScratch::delivery`](crate::GossipScratch::delivery)).
    #[inline]
    pub fn edge_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.offsets[u.index()]..self.offsets[u.index() + 1]
    }

    /// `u`'s communication neighbors as [`NodeId`]s, ascending.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors_raw(u).iter().copied().map(NodeId::new)
    }

    /// The cached latencies aligned with [`TopologyView::neighbors_raw`].
    #[inline]
    pub fn neighbor_delays(&self, u: NodeId) -> &[SimTime] {
        &self.delay[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// The hash power of node `u` at snapshot time.
    #[inline]
    pub fn hash_power(&self, u: NodeId) -> f64 {
        self.hash_power[u.index()]
    }

    /// Floods one block from `source`, writing arrival and relay times
    /// into `scratch` without allocating (after `scratch` has warmed up to
    /// this network size once).
    ///
    /// Behaviour matches [`broadcast`](crate::broadcast()) exactly; see the
    /// module docs for the determinism guarantee.
    pub fn broadcast_into(&self, source: NodeId, scratch: &mut BroadcastScratch) {
        let n = self.len();
        scratch.source = source;
        scratch.arrival.clear();
        scratch.arrival.resize(n, SimTime::INFINITY);
        scratch.relay_at.clear();
        scratch.relay_at.resize(n, SimTime::INFINITY);
        scratch.queue.clear();

        scratch.arrival[source.index()] = SimTime::ZERO;
        scratch
            .queue
            .push((SimTime::ZERO.as_ms().to_bits(), source.as_u32()));

        while let Some((t_bits, u)) = scratch.queue.pop() {
            scratch.counters.flood_pops += 1;
            let ui = u as usize;
            let t = SimTime::from_ms(f64::from_bits(t_bits));
            // Raw f64 compare: times are never NaN and never -0.0, so
            // this matches SimTime's total order at lower cost.
            if t.as_ms() > scratch.arrival[ui].as_ms() {
                continue; // stale entry
            }
            let relay = self.relay[ui].relay_time(t, u == source.as_u32());
            scratch.relay_at[ui] = relay;
            if relay.is_infinite() {
                continue; // silent node: absorbs the block
            }
            let (start, end) = (self.offsets[ui], self.offsets[ui + 1]);
            scratch.counters.flood_relaxations += (end - start) as u64;
            for (&v, &delay) in self.edges[start..end].iter().zip(&self.delay[start..end]) {
                let vi = v as usize;
                let tv = relay + delay;
                if tv.as_ms() < scratch.arrival[vi].as_ms() {
                    scratch.arrival[vi] = tv;
                    scratch.counters.flood_improvements += 1;
                    scratch.queue.push((tv.as_ms().to_bits(), v));
                }
            }
            scratch.counters.queue_peak =
                scratch.counters.queue_peak.max(scratch.queue.len() as u64);
        }
    }

    /// [`TopologyView::broadcast_into`] with a link-fault lens applied to
    /// every announcement leg: each relaxation edge `e` crosses at
    /// [`BlockFaults::announce_leg`]`(e, delay[e])` instead of `delay[e]`
    /// — or not at all (`None`: the link is down or the block was
    /// dropped).
    ///
    /// With `faults: None` this *is* [`TopologyView::broadcast_into`]
    /// (same code path), and with an inert plan the lens returns the base
    /// delay bitwise, so both are bit-identical to the fault-free flood.
    pub fn broadcast_into_faulted(
        &self,
        source: NodeId,
        scratch: &mut BroadcastScratch,
        faults: Option<&BlockFaults<'_>>,
    ) {
        let Some(faults) = faults else {
            return self.broadcast_into(source, scratch);
        };
        let n = self.len();
        scratch.source = source;
        scratch.arrival.clear();
        scratch.arrival.resize(n, SimTime::INFINITY);
        scratch.relay_at.clear();
        scratch.relay_at.resize(n, SimTime::INFINITY);
        scratch.queue.clear();

        scratch.arrival[source.index()] = SimTime::ZERO;
        scratch
            .queue
            .push((SimTime::ZERO.as_ms().to_bits(), source.as_u32()));

        while let Some((t_bits, u)) = scratch.queue.pop() {
            scratch.counters.flood_pops += 1;
            let ui = u as usize;
            let t = SimTime::from_ms(f64::from_bits(t_bits));
            if t.as_ms() > scratch.arrival[ui].as_ms() {
                continue; // stale entry
            }
            let relay = self.relay[ui].relay_time(t, u == source.as_u32());
            scratch.relay_at[ui] = relay;
            if relay.is_infinite() {
                continue; // silent node: absorbs the block
            }
            let (start, end) = (self.offsets[ui], self.offsets[ui + 1]);
            scratch.counters.flood_relaxations += (end - start) as u64;
            for e in start..end {
                let fate = faults.announce_leg_classified(e, self.delay[e]);
                scratch.counters.fault_delays += fate.delayed as u64;
                scratch.counters.fault_dupes += fate.duplicated as u64;
                let Some(leg) = fate.time else {
                    scratch.counters.fault_drops += 1;
                    continue; // dropped or the link is down
                };
                let v = self.edges[e];
                let vi = v as usize;
                let tv = relay + leg;
                if tv.as_ms() < scratch.arrival[vi].as_ms() {
                    scratch.arrival[vi] = tv;
                    scratch.counters.flood_improvements += 1;
                    scratch.queue.push((tv.as_ms().to_bits(), v));
                }
            }
            scratch.counters.queue_peak =
                scratch.counters.queue_peak.max(scratch.queue.len() as u64);
        }
    }

    /// Convenience wrapper: floods from `source` into a fresh
    /// [`Propagation`] (one allocation per call; use
    /// [`TopologyView::broadcast_into`] with a reused scratch on hot
    /// paths).
    pub fn broadcast(&self, source: NodeId) -> Propagation {
        let mut scratch = BroadcastScratch::new();
        self.broadcast_into(source, &mut scratch);
        scratch.into_propagation()
    }

    /// [`TopologyView::broadcast_into`] sharded by contiguous node range:
    /// the node set is split into `workspace.shard_count()` equal ranges,
    /// each owned by one worker that runs a local label-correcting
    /// Dijkstra over its own nodes; relaxations crossing a shard boundary
    /// become frontier messages, merged between waves in deterministic
    /// `(shard, packed-key)` order. See [`ShardWorkspace`] for why the
    /// result is **bit-identical** to the single-queue flood — on any
    /// shard count, thread count or [`QueueKind`].
    pub fn broadcast_sharded_into(
        &self,
        source: NodeId,
        scratch: &mut BroadcastScratch,
        workspace: &mut ShardWorkspace,
    ) {
        self.broadcast_sharded_into_faulted(source, scratch, None, workspace);
    }

    /// [`TopologyView::broadcast_sharded_into`] with a link-fault lens,
    /// mirroring [`TopologyView::broadcast_into_faulted`]: every
    /// relaxation leg — local or cross-shard — consults
    /// [`BlockFaults::announce_leg`] for its directed-edge index, so the
    /// candidate set is the faulted one and the fixpoint matches the
    /// faulted single-queue flood bit for bit.
    pub fn broadcast_sharded_into_faulted(
        &self,
        source: NodeId,
        scratch: &mut BroadcastScratch,
        faults: Option<&BlockFaults<'_>>,
        workspace: &mut ShardWorkspace,
    ) {
        let n = self.len();
        let shards = workspace.shards.clamp(1, n.max(1));
        let shard_size = n.max(1).div_ceil(shards);
        workspace.reset(n, shards, shard_size);
        scratch.source = source;
        let ShardWorkspace { states, inbox, .. } = &mut *workspace;

        // Seed the source's shard.
        {
            let state = &mut states[source.index() / shard_size];
            state.arrival[source.index() - state.base] = SimTime::ZERO;
            state
                .queue
                .push((SimTime::ZERO.as_ms().to_bits(), source.as_u32()));
        }

        // BSP waves: drain every shard's queue in parallel, then route the
        // cross-shard frontier messages and go again until nothing moved.
        let src = source.as_u32();
        loop {
            let outboxes: Vec<Vec<(u32, u64)>> =
                rayon::par_map_chunks_mut(states.as_mut_slice(), 1, |_, chunk| {
                    let state = &mut chunk[0];
                    let base = state.base;
                    let end = base + state.arrival.len();
                    let mut outbox = std::mem::take(&mut state.outbox);
                    while let Some((t_bits, u)) = state.queue.pop() {
                        state.counters.flood_pops += 1;
                        let ui = u as usize;
                        let t = SimTime::from_ms(f64::from_bits(t_bits));
                        if t.as_ms() > state.arrival[ui - base].as_ms() {
                            continue; // stale entry
                        }
                        let relay = self.relay[ui].relay_time(t, u == src);
                        if relay.is_infinite() {
                            continue; // silent node: absorbs the block
                        }
                        let (row_start, row_end) = (self.offsets[ui], self.offsets[ui + 1]);
                        state.counters.flood_relaxations += (row_end - row_start) as u64;
                        for e in row_start..row_end {
                            let leg = match faults {
                                Some(f) => {
                                    let fate = f.announce_leg_classified(e, self.delay[e]);
                                    state.counters.fault_delays += fate.delayed as u64;
                                    state.counters.fault_dupes += fate.duplicated as u64;
                                    match fate.time {
                                        Some(l) => l,
                                        None => {
                                            state.counters.fault_drops += 1;
                                            continue; // dropped or the link is down
                                        }
                                    }
                                }
                                None => self.delay[e],
                            };
                            let v = self.edges[e];
                            let vi = v as usize;
                            let tv = relay + leg;
                            if vi >= base && vi < end {
                                if tv.as_ms() < state.arrival[vi - base].as_ms() {
                                    state.arrival[vi - base] = tv;
                                    state.counters.flood_improvements += 1;
                                    state.queue.push((tv.as_ms().to_bits(), v));
                                }
                            } else {
                                // Cross-shard relaxation: the owner's label
                                // is not visible here, so ship the
                                // candidate and let the merge min it in.
                                outbox.push((v, tv.as_ms().to_bits()));
                            }
                        }
                    }
                    outbox
                });

            // Deterministic merge: messages ordered by (shard, packed key)
            // — shard ownership is monotone in the node id, and the packed
            // key is (target, time-bits), so one sort covers both levels.
            // The merge itself is a running f64 min per target, which is
            // order-independent anyway; the sort makes the schedule (and
            // any instrumentation of it) reproducible too, not just the
            // fixpoint.
            inbox.clear();
            for (state, mut outbox) in states.iter_mut().zip(outboxes) {
                inbox.append(&mut outbox);
                state.outbox = outbox; // keep the allocation for next wave
                                       // The wave drained the queue; clearing resets the
                                       // calendar cursor (O(1) after a full drain) so next
                                       // wave's seeds may be earlier than this wave's last pop.
                state.queue.clear();
            }
            if inbox.is_empty() {
                break;
            }
            inbox.sort_unstable();
            let mut progressed = false;
            for &(v, t_bits) in inbox.iter() {
                let vi = v as usize;
                let tv = SimTime::from_ms(f64::from_bits(t_bits));
                let state = &mut states[vi / shard_size];
                if tv.as_ms() < state.arrival[vi - state.base].as_ms() {
                    state.arrival[vi - state.base] = tv;
                    state.counters.flood_improvements += 1;
                    state.queue.push((t_bits, v));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // Write the per-shard labels back into the flat scratch and derive
        // relay starts: at the fixpoint `relay_at[u]` is a pure function
        // of `arrival[u]` (the single-queue flood computes it from the
        // same settled arrival), so one pass reproduces it bitwise.
        scratch.arrival.clear();
        for state in states.iter() {
            scratch.arrival.extend_from_slice(&state.arrival);
            // Shard tallies sum in shard order; the totals are the same
            // for any order (counts add, peaks max).
            scratch.counters.merge(&state.counters);
        }
        scratch.relay_at.clear();
        scratch
            .relay_at
            .extend(scratch.arrival.iter().zip(&self.relay).enumerate().map(
                |(ui, (&t, profile))| {
                    if t.is_finite() {
                        profile.relay_time(t, ui == source.index())
                    } else {
                        SimTime::INFINITY
                    }
                },
            ));
        scratch.queue.clear();
    }

    /// Patches the snapshot to reflect one round of rewiring instead of
    /// rebuilding it from scratch.
    ///
    /// A Perigee round rewires only the dropped/refilled connections —
    /// about `2·n` of the `~14·n` directed edges — yet a fresh
    /// [`TopologyView::new`] pays one latency-model evaluation (a hash
    /// plus a square root for the geographic model) *per directed edge*
    /// and one `BTreeSet` walk plus a `Vec` allocation per node. This
    /// method merges the delta into the CSR arrays in one linear pass:
    /// cached delays of surviving edges are copied verbatim, the latency
    /// model is consulted only for the added edges, and the reverse-edge
    /// map is recomputed index-for-index. Per-node state (relay profiles,
    /// hash power, link rates) is untouched — rewiring never changes it.
    ///
    /// The patched view is **field-for-field equal** to a freshly built
    /// `TopologyView::new` on the rewired topology (asserted by the
    /// `netsim` proptest suite and, in debug builds, by the engine after
    /// every round).
    ///
    /// # Panics
    ///
    /// Panics if the delta is inconsistent with the snapshot: a removed
    /// edge that the view does not hold, an added edge it already holds,
    /// or an endpoint out of range.
    pub fn apply_rewiring<L: LatencyModel + ?Sized>(&mut self, delta: &RoundDelta, latency: &L) {
        if delta.is_empty() {
            return;
        }
        let n = self.len();
        self.merge_rewiring(delta, latency, n);
    }

    /// Patches the snapshot across one round of a *dynamic* world —
    /// node arrivals, departures and the round's edge rewiring in one
    /// incremental pass, extending [`TopologyView::apply_rewiring`] to
    /// worlds whose node set moves.
    ///
    /// `rewiring` must contain every communication edge the round tore
    /// down or created, *including* the torn-down edges of departing
    /// nodes and the bootstrap edges of joiners — exactly what a driver
    /// that logs all disconnect/connect operations already produces.
    /// `population` is the **post-delta** population: new slots grow the
    /// CSR by empty rows before the merge (CSR row insert/delete happens
    /// in the same one linear pass as the edge merge), departed slots
    /// keep an empty row (the stable-id contract — ids are never reused,
    /// so a dead row costs one `offsets` entry and nothing else), and all
    /// per-node attributes (relay profiles, hash power, link rates) are
    /// refreshed from the population because retirements zero hash power
    /// and the renormalization rescales every live node.
    ///
    /// Cost: one linear merge over the CSR arrays plus an `O(n)`
    /// attribute copy — latency-model calls **only** for the added edges
    /// (which include every new node's bootstrap links). The patched view
    /// is field-for-field equal to `TopologyView::new` on the post-delta
    /// world (asserted by the netsim proptests and, in debug builds, by
    /// the engine after every churny round).
    ///
    /// # Panics
    ///
    /// Panics if the population shrank (ids are stable, worlds only grow
    /// in slot count), if the latency model does not cover the grown
    /// population, or if `rewiring` is inconsistent with the snapshot
    /// (see [`TopologyView::apply_rewiring`]).
    pub fn apply_world_delta<L: LatencyModel + ?Sized>(
        &mut self,
        delta: &WorldDelta,
        rewiring: &RoundDelta,
        latency: &L,
        population: &Population,
    ) {
        let n_new = population.len();
        assert!(n_new >= self.len(), "populations never shrink (stable ids)");
        assert_eq!(
            latency.len(),
            n_new,
            "latency model must cover the grown population"
        );
        self.merge_rewiring(rewiring, latency, n_new);
        let (relay, hash_power, uplink, downlink, uniform) = node_attributes(population);
        self.relay = relay;
        self.hash_power = hash_power;
        self.uplink_mbps = uplink;
        self.downlink_mbps = downlink;
        self.uniform_weight = uniform;
        #[cfg(debug_assertions)]
        for v in delta.retired() {
            debug_assert!(
                self.edge_range(v).is_empty(),
                "departed node {v} still holds edges — the rewiring log missed its teardown"
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = delta;
    }

    /// Applies a free-list compaction plan to the carried snapshot in one
    /// linear pass, **without a single latency-model call**: dead slots'
    /// (empty) CSR rows are deleted, surviving rows shift down with every
    /// stored id renumbered through the plan, and the cached per-edge
    /// delay floats are copied verbatim — the latency model's
    /// [`compact`](crate::LatencyModel::compact) contract guarantees
    /// `delay(new_u, new_v) == delay(old_u, old_v)` bit for bit, so the
    /// copied floats are exactly what a fresh build would recompute. The
    /// remap is monotone on live ids, so rows stay ascending without
    /// re-sorting; the reverse-edge map is recomputed index-for-index
    /// (integer work only) and per-node attributes are refreshed from the
    /// compacted `population`, exactly as in [`TopologyView::new`].
    ///
    /// Call this with the *same* plan, in the same step, as
    /// `Population::compact`, `Topology::compact` and the latency model's
    /// `compact` — the patched view is field-for-field equal to a fresh
    /// `TopologyView::new` over the compacted world (asserted in debug
    /// builds by the engine).
    ///
    /// # Panics
    ///
    /// Panics if the plan covers a different node count, if `population`
    /// is not the compacted (post-plan) population, or if a dead slot
    /// still holds edges.
    pub fn compact(&mut self, plan: &IdRemap, population: &Population) {
        assert_eq!(
            plan.old_len(),
            self.len(),
            "compaction plan covers a different world size"
        );
        assert_eq!(
            population.len(),
            plan.new_len(),
            "population must already be compacted"
        );
        let n_new = plan.new_len();
        let mut offsets = Vec::with_capacity(n_new + 1);
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut delay = Vec::with_capacity(self.delay.len());
        offsets.push(0);
        for old in 0..self.len() {
            let (start, end) = (self.offsets[old], self.offsets[old + 1]);
            if plan.new_id(NodeId::new(old as u32)).is_none() {
                assert!(
                    start == end,
                    "compaction: dead node {old} still holds edges"
                );
                continue;
            }
            for e in start..end {
                edges.push(plan.remap(NodeId::new(self.edges[e])).as_u32());
                delay.push(self.delay[e]);
            }
            offsets.push(edges.len());
        }
        self.offsets = offsets;
        self.edges = edges;
        self.delay = delay;
        self.reverse.clear();
        self.reverse.resize(self.edges.len(), 0);
        for u in 0..n_new {
            for e in self.offsets[u]..self.offsets[u + 1] {
                let v = self.edges[e] as usize;
                let row = &self.edges[self.offsets[v]..self.offsets[v + 1]];
                let k = row
                    .binary_search(&(u as u32))
                    .expect("communication graph is symmetric");
                self.reverse[e] = (self.offsets[v] + k) as u32;
            }
        }
        let (relay, hash_power, uplink, downlink, uniform) = node_attributes(population);
        self.relay = relay;
        self.hash_power = hash_power;
        self.uplink_mbps = uplink;
        self.downlink_mbps = downlink;
        self.uniform_weight = uniform;
    }

    /// The shared one-pass CSR merge behind [`TopologyView::apply_rewiring`]
    /// and [`TopologyView::apply_world_delta`]: rows `>= self.len()` are
    /// treated as (new, empty) rows, so growing the world and patching its
    /// edges is a single linear sweep.
    fn merge_rewiring<L: LatencyModel + ?Sized>(
        &mut self,
        delta: &RoundDelta,
        latency: &L,
        n_new: usize,
    ) {
        let n_old = self.len();
        // Expand the undirected delta into directed adjacency entries,
        // sorted by (row, neighbor) so one cursor pass covers all rows.
        let mut removed: Vec<(u32, u32)> = Vec::with_capacity(delta.removed.len() * 2);
        for &(a, b) in &delta.removed {
            removed.push((a, b));
            removed.push((b, a));
        }
        removed.sort_unstable();
        let mut added: Vec<(u32, u32)> = Vec::with_capacity(delta.added.len() * 2);
        for &(a, b) in &delta.added {
            added.push((a, b));
            added.push((b, a));
        }
        added.sort_unstable();
        if let Some(&(u, v)) = removed.last().into_iter().chain(added.last()).max() {
            assert!(
                (u as usize) < n_new && (v as usize) < n_new,
                "delta endpoint out of range"
            );
        }

        let m_new = self.edges.len() + added.len() - removed.len();
        // Incremental growth obeys the same packed-payload cap that
        // `try_new` enforces at construction: refuse to grow a snapshot
        // the gossip engine could no longer address.
        assert!(
            n_new < crate::gossip::PACKED_PAYLOAD_CAP && m_new < crate::gossip::PACKED_PAYLOAD_CAP,
            "{}",
            NetsimError::WorldTooLarge {
                nodes: n_new,
                directed_edges: m_new,
            }
        );
        let mut edges = Vec::with_capacity(m_new);
        let mut delay = Vec::with_capacity(m_new);
        let mut offsets = Vec::with_capacity(n_new + 1);
        offsets.push(0);
        let (mut ri, mut ai) = (0usize, 0usize);
        for u in 0..n_new as u32 {
            // Rows past the old node count are brand new: no surviving
            // entries, only additions.
            let (start, end) = if (u as usize) < n_old {
                (self.offsets[u as usize], self.offsets[u as usize + 1])
            } else {
                (0, 0)
            };
            let mut e = start;
            // Merge the surviving old entries with the (ascending) added
            // neighbors; both sequences are sorted, so the output row is.
            while e < end || (ai < added.len() && added[ai].0 == u) {
                let old_v = if e < end { Some(self.edges[e]) } else { None };
                let add_v = if ai < added.len() && added[ai].0 == u {
                    Some(added[ai].1)
                } else {
                    None
                };
                match (old_v, add_v) {
                    (Some(ov), av) if av.is_none_or(|a| ov < a) => {
                        if ri < removed.len() && removed[ri] == (u, ov) {
                            ri += 1; // dropped edge: skip it
                        } else {
                            edges.push(ov);
                            delay.push(self.delay[e]);
                        }
                        e += 1;
                    }
                    (ov, Some(av)) => {
                        assert!(
                            ov != Some(av),
                            "delta adds edge {u}-{av} the view already holds"
                        );
                        edges.push(av);
                        delay.push(latency.delay(NodeId::new(u), NodeId::new(av)));
                        ai += 1;
                    }
                    _ => unreachable!("loop condition guarantees one side"),
                }
            }
            offsets.push(edges.len());
        }
        assert!(
            ri == removed.len() && ai == added.len(),
            "delta removes an edge the view does not hold"
        );
        self.edges = edges;
        self.delay = delay;
        self.offsets = offsets;
        // All offsets after the first touched row shifted, so reverse
        // indices are recomputed globally — integer work only, no float
        // math, exactly as in `TopologyView::new`.
        self.reverse.clear();
        self.reverse.resize(self.edges.len(), 0);
        for u in 0..n_new {
            for e in self.offsets[u]..self.offsets[u + 1] {
                let v = self.edges[e] as usize;
                let row = &self.edges[self.offsets[v]..self.offsets[v + 1]];
                let k = row
                    .binary_search(&(u as u32))
                    .expect("communication graph is symmetric");
                self.reverse[e] = (self.offsets[v] + k) as u32;
            }
        }
    }
}

/// Per-node attribute extraction shared — verbatim — by
/// [`TopologyView::new`] and [`TopologyView::apply_world_delta`], so the
/// patched and freshly built views can only agree or both be wrong.
#[allow(clippy::type_complexity)]
fn node_attributes(
    population: &Population,
) -> (Vec<RelayProfile>, Vec<f64>, Vec<f64>, Vec<f64>, Option<f64>) {
    let relay = population
        .iter()
        .map(|p| match p.behavior {
            Behavior::Honest => RelayProfile::Honest {
                validation: p.validation_delay,
            },
            Behavior::Silent => RelayProfile::Silent,
            Behavior::Delay(extra) => RelayProfile::Delayed {
                validation: p.validation_delay,
                extra,
            },
        })
        .collect();
    let hash_power: Vec<f64> = population.iter().map(|p| p.hash_power).collect();
    let uniform_weight = match hash_power.split_first() {
        Some((&w, rest)) if rest.iter().all(|&x| x == w) => Some(w),
        _ => None,
    };
    let uplink_mbps = population.iter().map(|p| p.uplink_mbps).collect();
    let downlink_mbps = population.iter().map(|p| p.downlink_mbps).collect();
    (
        relay,
        hash_power,
        uplink_mbps,
        downlink_mbps,
        uniform_weight,
    )
}

/// The net change one round of rewiring makes to the undirected
/// communication graph: which edges disappeared and which appeared.
///
/// Built by [`RoundDelta::new`] from the raw removal/addition logs of a
/// rewiring phase; pairs are normalized (`u < v`), deduplicated, and an
/// edge that was removed and then re-added within the same round cancels
/// out entirely (its cached latency is still valid). Consumed by
/// [`TopologyView::apply_rewiring`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundDelta {
    removed: Vec<(u32, u32)>,
    added: Vec<(u32, u32)>,
}

impl RoundDelta {
    /// Normalizes raw removal/addition logs into a net delta.
    ///
    /// Each pair is an undirected communication edge in either endpoint
    /// order. For any single pair, a well-formed log alternates removals
    /// and additions (an edge must exist to be removed and be absent to
    /// be added), so the *counts* decide the net effect: one more removal
    /// than addition nets to "removed", one more addition nets to
    /// "added", equal counts cancel out entirely — the view's cached
    /// state for a dropped-and-re-established edge is still exact.
    pub fn new(removed: Vec<(NodeId, NodeId)>, added: Vec<(NodeId, NodeId)>) -> Self {
        let normalize = |pairs: Vec<(NodeId, NodeId)>| -> Vec<(u32, u32)> {
            let mut out: Vec<(u32, u32)> = pairs
                .into_iter()
                .map(|(a, b)| {
                    let (a, b) = (a.as_u32(), b.as_u32());
                    if a < b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .collect();
            out.sort_unstable();
            out
        };
        let rem = normalize(removed);
        let add = normalize(added);
        let mut removed = Vec::new();
        let mut added = Vec::new();
        // Merge-walk the two sorted multisets, netting counts per pair.
        let (mut i, mut j) = (0usize, 0usize);
        while i < rem.len() || j < add.len() {
            let pair = match (rem.get(i), add.get(j)) {
                (Some(&r), Some(&a)) => r.min(a),
                (Some(&r), None) => r,
                (None, Some(&a)) => a,
                (None, None) => unreachable!(),
            };
            let mut r_count = 0usize;
            while rem.get(i) == Some(&pair) {
                r_count += 1;
                i += 1;
            }
            let mut a_count = 0usize;
            while add.get(j) == Some(&pair) {
                a_count += 1;
                j += 1;
            }
            match r_count.cmp(&a_count) {
                std::cmp::Ordering::Greater => removed.push(pair),
                std::cmp::Ordering::Less => added.push(pair),
                std::cmp::Ordering::Equal => {}
            }
        }
        RoundDelta { removed, added }
    }

    /// `true` when the round changed nothing — patching is a no-op.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Number of net removed undirected edges.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// Number of net added undirected edges.
    pub fn added_count(&self) -> usize {
        self.added.len()
    }
}

/// Reusable flood state: arrival/relay buffers, the Dijkstra frontier
/// queue and the coverage sort buffer.
///
/// Create once per worker thread and reuse across blocks; after the first
/// flood of a given network size, subsequent floods perform no heap
/// allocation. The frontier is a [`PackedQueue`] — the calendar queue by
/// default, the reference `BinaryHeap` on request
/// ([`BroadcastScratch::with_queue`]); pop order, and therefore every
/// output float, is bit-identical either way (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct BroadcastScratch {
    source: NodeId,
    arrival: Vec<SimTime>,
    relay_at: Vec<SimTime>,
    /// Keys are `(t.to_bits(), node)`: simulated times are non-negative,
    /// where the IEEE-754 bit pattern is monotone in the value, so integer
    /// ordering reproduces `SimTime`'s total order exactly at lower
    /// compare cost, with exact-time ties broken by ascending node id.
    queue: PackedQueue<(u64, u32)>,
    coverage: Vec<(SimTime, f64)>,
    select: Vec<SimTime>,
    /// Hot-path event tallies, accumulated across floods until harvested
    /// with [`BroadcastScratch::take_counters`]. Write-only from the
    /// simulation's point of view (see [`crate::counters`]).
    counters: SimCounters,
}

impl BroadcastScratch {
    /// Creates an empty scratch (buffers grow on first use) on the
    /// default queue kind.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty scratch running on the given queue kind.
    pub fn with_queue(kind: QueueKind) -> Self {
        BroadcastScratch {
            queue: PackedQueue::with_kind(kind),
            ..Self::default()
        }
    }

    /// Creates a scratch pre-sized for `n` nodes on the default queue
    /// kind.
    pub fn with_capacity(n: usize) -> Self {
        Self::with_capacity_and_queue(n, QueueKind::default())
    }

    /// Creates a scratch pre-sized for `n` nodes on the given queue kind.
    pub fn with_capacity_and_queue(n: usize, kind: QueueKind) -> Self {
        BroadcastScratch {
            source: NodeId::new(0),
            arrival: Vec::with_capacity(n),
            relay_at: Vec::with_capacity(n),
            queue: PackedQueue::with_kind_and_capacity(kind, n),
            coverage: Vec::with_capacity(n),
            select: Vec::with_capacity(n),
            counters: SimCounters::ZERO,
        }
    }

    /// The hot-path tallies accumulated since the last
    /// [`BroadcastScratch::take_counters`].
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// Harvests and zeroes the accumulated tallies (telemetry merge
    /// point).
    pub fn take_counters(&mut self) -> SimCounters {
        std::mem::take(&mut self.counters)
    }

    /// Which priority-queue implementation this scratch floods on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The source of the last flood.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// First-arrival time of the last flood at `v`.
    #[inline]
    pub fn arrival(&self, v: NodeId) -> SimTime {
        self.arrival[v.index()]
    }

    /// All first-arrival times of the last flood, indexed by node.
    #[inline]
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrival
    }

    /// When `u` began relaying in the last flood (`INFINITY` for silent or
    /// unreached nodes).
    #[inline]
    pub fn relay_start(&self, u: NodeId) -> SimTime {
        self.relay_at[u.index()]
    }

    /// All relay-start times of the last flood, indexed by node.
    #[inline]
    pub fn relay_starts(&self) -> &[SimTime] {
        &self.relay_at
    }

    /// Number of nodes the last flood reached.
    pub fn reached(&self) -> usize {
        self.arrival.iter().filter(|t| t.is_finite()).count()
    }

    /// Computes λ(fraction) of the last flood for every entry of
    /// `fractions` in one pass over a reusable sorted buffer, writing into
    /// `out` (`out.len()` must equal `fractions.len()`).
    ///
    /// Equivalent to calling [`Propagation::coverage_time`] per fraction,
    /// without the per-call allocation and re-sort.
    ///
    /// # Panics
    ///
    /// Panics if `out` and `fractions` have different lengths.
    pub fn coverage_times_into(
        &mut self,
        view: &TopologyView,
        fractions: &[f64],
        out: &mut [SimTime],
    ) {
        coverage_times_from_arrivals(
            view,
            &self.arrival,
            fractions,
            out,
            &mut self.coverage,
            &mut self.select,
        );
    }

    /// Converts the scratch into an owned [`Propagation`], consuming the
    /// buffers (no copy).
    pub fn into_propagation(self) -> Propagation {
        Propagation::from_parts(self.source, self.arrival, self.relay_at)
    }
}

/// One shard's slice of the sharded flood: the contiguous node range
/// `[base, base + arrival.len())`, its local arrival labels, its own
/// frontier queue and the outbox of cross-shard relaxations produced by
/// the current wave.
#[derive(Debug, Clone)]
struct ShardState {
    /// First node id owned by this shard.
    base: usize,
    /// Arrival labels for the owned range, indexed by `node - base`.
    arrival: Vec<SimTime>,
    /// Local Dijkstra frontier (same packed keys as the flat flood).
    queue: PackedQueue<(u64, u32)>,
    /// Cross-shard candidates `(target node, time bits)` emitted this
    /// wave; drained into the merge, allocation reused across waves.
    outbox: Vec<(u32, u64)>,
    /// Hot-path tallies for this shard's waves; summed into the flat
    /// scratch at write-back (order-independent, see [`crate::counters`]).
    counters: SimCounters,
}

/// Reusable state for [`TopologyView::broadcast_sharded_into`]: per-shard
/// arrival slices, frontier queues and outboxes, plus the merge inbox.
///
/// # Why the sharded flood is bit-identical to the single-queue one
///
/// The flood computes, for every node `u`, the minimum over all paths of
/// the path's arrival expression — a chain of `relay_time` and `+ delay`
/// f64 operations. That fixpoint is unique: IEEE-754 `min` over a fixed
/// candidate set is exact and order-independent, and every individual
/// candidate is computed by the *same* sequence of float operations here
/// as in [`TopologyView::broadcast_into`] (same `relay_time` call on the
/// settled arrival, same `relay + delay` addition per edge). Sharding
/// only changes the *schedule* on which candidates are discovered — the
/// label-correcting shard loop may evaluate extra, stale candidates, but
/// every such candidate is ≥ the final label it is compared against and
/// therefore cannot change any minimum. Hence arrivals, and the relay
/// starts derived from them by a pure final pass, match the single-queue
/// flood bit for bit on every shard count, thread count and
/// [`QueueKind`].
///
/// Between parallel waves, cross-shard candidates are merged
/// sequentially in sorted `(shard, packed-key)` order — shard ownership
/// is monotone in the node id and the packed key is `(node, time-bits)`,
/// so one `sort_unstable` over the combined inbox fixes the schedule.
/// The merge itself is a running min per target, so the sort is about a
/// reproducible schedule (wave counts, queue contents) rather than the
/// fixpoint, which no ordering can perturb.
#[derive(Debug, Clone)]
pub struct ShardWorkspace {
    /// Requested shard count (clamped to the node count per flood).
    shards: usize,
    /// Queue implementation each shard's frontier runs on.
    kind: QueueKind,
    /// Per-shard state, rebuilt only when the geometry or kind changes.
    states: Vec<ShardState>,
    /// Merge buffer for the cross-shard candidates of one wave.
    inbox: Vec<(u32, u64)>,
}

impl ShardWorkspace {
    /// Creates a workspace that splits floods into `shards` contiguous
    /// node ranges, on the default queue kind. `shards` is clamped to at
    /// least 1 (and to the node count at flood time); 1 shard reproduces
    /// the flat flood through the same code path.
    pub fn new(shards: usize) -> Self {
        Self::with_queue(shards, QueueKind::default())
    }

    /// [`ShardWorkspace::new`] on an explicit [`QueueKind`] for the
    /// per-shard frontiers. The kind is pure performance — pop order is
    /// bit-identical either way.
    pub fn with_queue(shards: usize, kind: QueueKind) -> Self {
        ShardWorkspace {
            shards: shards.max(1),
            kind,
            states: Vec::new(),
            inbox: Vec::new(),
        }
    }

    /// The configured shard count (before per-flood clamping).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Which priority-queue implementation the shard frontiers run on.
    pub fn queue_kind(&self) -> QueueKind {
        self.kind
    }

    /// Prepares the per-shard states for a flood over `n` nodes split
    /// into `shards` ranges of `shard_size`: (re)builds the geometry if
    /// it changed, then resets every label to `INFINITY` and empties the
    /// queues and outboxes (allocations kept).
    fn reset(&mut self, n: usize, shards: usize, shard_size: usize) {
        let geometry_changed = self.states.len() != shards
            || self.states.last().is_some_and(|s| {
                s.base + s.arrival.len() != n || s.base != (shards - 1) * shard_size
            });
        if geometry_changed {
            let kind = self.kind;
            self.states = (0..shards)
                .map(|k| {
                    let base = k * shard_size;
                    let len = n.saturating_sub(base).min(shard_size);
                    ShardState {
                        base,
                        arrival: vec![SimTime::INFINITY; len],
                        queue: PackedQueue::with_kind(kind),
                        outbox: Vec::new(),
                        counters: SimCounters::ZERO,
                    }
                })
                .collect();
        } else {
            for state in &mut self.states {
                state.arrival.fill(SimTime::INFINITY);
                state.queue.clear();
                state.outbox.clear();
                state.counters = SimCounters::ZERO;
            }
        }
        self.inbox.clear();
    }
}

/// Validates a coverage fraction under the shared contract of every
/// `coverage_time`/`coverage_times`/`coverage_times_into` entry point:
/// `NaN` is a programming error and panics; any other out-of-range value
/// clamps into `[0, 1]` (so `-0.3` asks for the first arrival and `1.7`
/// for full coverage) instead of silently scanning past the cumulative
/// weight and returning garbage.
#[inline]
pub(crate) fn clamp_fraction(fraction: f64) -> f64 {
    assert!(!fraction.is_nan(), "coverage fraction must not be NaN");
    fraction.clamp(0.0, 1.0)
}

/// Computes λ(fraction) for every entry of `fractions` from one arrival
/// vector, reusing the caller's sort/selection buffers — the shared
/// implementation behind [`BroadcastScratch::coverage_times_into`] and
/// [`GossipScratch::coverage_times_into`](crate::GossipScratch::coverage_times_into).
/// Fractions go through [`clamp_fraction`] (NaN panics, out-of-range
/// clamps).
pub(crate) fn coverage_times_from_arrivals(
    view: &TopologyView,
    arrival: &[SimTime],
    fractions: &[f64],
    out: &mut [SimTime],
    coverage: &mut Vec<(SimTime, f64)>,
    select: &mut Vec<SimTime>,
) {
    assert_eq!(fractions.len(), out.len(), "one output slot per fraction");
    if let Some(w) = view.uniform_weight {
        // Uniform hash power: the crossing index of the cumulative
        // weight scan is independent of arrival order, so λ(f) is the
        // k-th smallest arrival — an O(n) selection, no sort. The
        // accumulation below replays the scan's float additions
        // exactly, keeping the result bit-identical to the weighted
        // path.
        select.clear();
        select.extend_from_slice(arrival);
        for (slot, &fraction) in out.iter_mut().zip(fractions) {
            let fraction = clamp_fraction(fraction);
            let mut acc = 0.0;
            let mut k = 0usize;
            for _ in 0..select.len() {
                acc += w;
                k += 1;
                if acc >= fraction - 1e-12 {
                    break;
                }
            }
            *slot = if k > 0 && acc >= fraction - 1e-12 {
                *select.select_nth_unstable(k - 1).1
            } else {
                SimTime::INFINITY
            };
        }
        return;
    }
    coverage.clear();
    coverage.extend(arrival.iter().zip(&view.hash_power).map(|(&t, &w)| (t, w)));
    coverage.sort_unstable_by_key(|&(t, _)| t);
    for (slot, &fraction) in out.iter_mut().zip(fractions) {
        *slot = coverage_scan(coverage, fraction);
    }
}

/// Scans weighted arrivals (sorted ascending by time) for the first time
/// at which the cumulative weight reaches `fraction`. The fraction goes
/// through [`clamp_fraction`] (NaN panics, out-of-range clamps).
pub(crate) fn coverage_scan(sorted: &[(SimTime, f64)], fraction: f64) -> SimTime {
    let fraction = clamp_fraction(fraction);
    let mut acc = 0.0;
    for &(t, w) in sorted {
        acc += w;
        if acc >= fraction - 1e-12 {
            return t;
        }
    }
    SimTime::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConnectionLimits;
    use crate::latency::GeoLatencyModel;
    use crate::population::PopulationBuilder;
    use crate::{broadcast, LatencyModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_world(n: usize, seed: u64) -> (Population, GeoLatencyModel, Topology, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::paper_default());
        for i in 0..n as u32 {
            let _ = topo.connect(NodeId::new(i), NodeId::new((i + 1) % n as u32));
        }
        for _ in 0..3 * n {
            let u = NodeId::new(rng.gen_range(0..n as u32));
            let v = NodeId::new(rng.gen_range(0..n as u32));
            let _ = topo.connect(u, v);
        }
        (pop, lat, topo, rng)
    }

    #[test]
    fn csr_matches_topology_neighbors() {
        let (pop, lat, topo, _) = random_world(80, 3);
        let view = TopologyView::new(&topo, &lat, &pop);
        for i in 0..80u32 {
            let u = NodeId::new(i);
            let from_view: Vec<NodeId> = view.neighbors(u).collect();
            assert_eq!(from_view, topo.neighbors(u));
            let delays = view.neighbor_delays(u);
            for (k, v) in view.neighbors(u).enumerate() {
                assert_eq!(delays[k], lat.delay(u, v));
            }
        }
    }

    #[test]
    fn flood_is_bit_identical_to_legacy_broadcast() {
        for seed in 0..10 {
            let (pop, lat, topo, mut rng) = random_world(120, seed);
            let view = TopologyView::new(&topo, &lat, &pop);
            let mut scratch = BroadcastScratch::new();
            for _ in 0..5 {
                let src = NodeId::new(rng.gen_range(0..120));
                let legacy = broadcast(&topo, &lat, &pop, src);
                view.broadcast_into(src, &mut scratch);
                assert_eq!(scratch.arrivals(), legacy.arrivals(), "seed {seed}");
                assert_eq!(scratch.relay_starts().len(), 120);
                for i in 0..120u32 {
                    let v = NodeId::new(i);
                    assert_eq!(scratch.relay_start(v), legacy.relay_start(v));
                }
            }
        }
    }

    #[test]
    fn sharded_flood_is_bit_identical_across_shards_and_queues() {
        for seed in 0..4 {
            let (pop, lat, topo, mut rng) = random_world(150, seed);
            let view = TopologyView::new(&topo, &lat, &pop);
            let mut reference = BroadcastScratch::new();
            for _ in 0..3 {
                let src = NodeId::new(rng.gen_range(0..150));
                view.broadcast_into(src, &mut reference);
                for kind in [QueueKind::BinaryHeap, QueueKind::Calendar] {
                    for shards in [1, 2, 3, 7] {
                        let mut ws = ShardWorkspace::with_queue(shards, kind);
                        let mut scratch = BroadcastScratch::with_queue(kind);
                        view.broadcast_sharded_into(src, &mut scratch, &mut ws);
                        assert_eq!(
                            scratch.arrivals(),
                            reference.arrivals(),
                            "arrivals diverged: seed {seed}, {shards} shards, {kind:?}"
                        );
                        assert_eq!(
                            scratch.relay_starts(),
                            reference.relay_starts(),
                            "relay starts diverged: seed {seed}, {shards} shards, {kind:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_flood_is_thread_count_invariant() {
        let (pop, lat, topo, _) = random_world(200, 11);
        let view = TopologyView::new(&topo, &lat, &pop);
        let mut reference = BroadcastScratch::new();
        view.broadcast_into(NodeId::new(3), &mut reference);
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut ws = ShardWorkspace::new(5);
                let mut scratch = BroadcastScratch::new();
                view.broadcast_sharded_into(NodeId::new(3), &mut scratch, &mut ws);
                assert_eq!(
                    scratch.arrivals(),
                    reference.arrivals(),
                    "{threads} threads"
                );
                assert_eq!(
                    scratch.relay_starts(),
                    reference.relay_starts(),
                    "{threads} threads"
                );
            });
        }
    }

    #[test]
    fn sharded_faulted_flood_matches_flat_faulted_flood() {
        use crate::faults::{FaultPlan, LinkFaultRates};
        let (pop, lat, topo, mut rng) = random_world(120, 5);
        let view = TopologyView::new(&topo, &lat, &pop);
        let regions: Vec<_> = pop.iter().map(|p| p.region).collect();
        let plan = FaultPlan {
            seed: 9,
            base: LinkFaultRates {
                drop_prob: 0.2,
                extra_delay: SimTime::from_ms(3.0),
                jitter: SimTime::from_ms(2.0),
                duplicate_prob: 0.1,
            },
            ..FaultPlan::default()
        };
        let rf = plan.compile(2, &view, &regions);
        let mut reference = BroadcastScratch::new();
        let mut scratch = BroadcastScratch::new();
        let mut ws = ShardWorkspace::new(4); // reused across blocks, like the engine would
        for block in 0..4 {
            let bf = rf.block(block);
            let src = NodeId::new(rng.gen_range(0..120));
            view.broadcast_into_faulted(src, &mut reference, Some(&bf));
            view.broadcast_sharded_into_faulted(src, &mut scratch, Some(&bf), &mut ws);
            assert_eq!(scratch.arrivals(), reference.arrivals(), "block {block}");
            assert_eq!(
                scratch.relay_starts(),
                reference.relay_starts(),
                "block {block}"
            );
        }
    }

    #[test]
    fn shard_workspace_adapts_to_changing_world_size() {
        let mut ws = ShardWorkspace::new(3);
        let mut scratch = BroadcastScratch::new();
        let mut reference = BroadcastScratch::new();
        for (n, seed) in [(60usize, 1u64), (97, 2), (60, 3), (5, 4)] {
            let (pop, lat, topo, _) = random_world(n, seed);
            let view = TopologyView::new(&topo, &lat, &pop);
            view.broadcast_into(NodeId::new(0), &mut reference);
            view.broadcast_sharded_into(NodeId::new(0), &mut scratch, &mut ws);
            assert_eq!(scratch.arrivals(), reference.arrivals(), "n = {n}");
            assert_eq!(scratch.relay_starts(), reference.relay_starts(), "n = {n}");
        }
        // More shards than nodes clamps instead of panicking.
        let (pop, lat, topo, _) = random_world(4, 9);
        let view = TopologyView::new(&topo, &lat, &pop);
        let mut wide = ShardWorkspace::new(64);
        view.broadcast_into(NodeId::new(1), &mut reference);
        view.broadcast_sharded_into(NodeId::new(1), &mut scratch, &mut wide);
        assert_eq!(scratch.arrivals(), reference.arrivals());
    }

    #[test]
    fn scratch_coverage_matches_propagation_coverage() {
        let (pop, lat, topo, _) = random_world(100, 9);
        let view = TopologyView::new(&topo, &lat, &pop);
        let mut scratch = BroadcastScratch::new();
        view.broadcast_into(NodeId::new(4), &mut scratch);
        let legacy = broadcast(&topo, &lat, &pop, NodeId::new(4));
        let mut cov = [SimTime::ZERO; 3];
        scratch.coverage_times_into(&view, &[0.5, 0.9, 1.0], &mut cov);
        assert_eq!(cov[0], legacy.coverage_time(&pop, 0.5));
        assert_eq!(cov[1], legacy.coverage_time(&pop, 0.9));
        assert_eq!(cov[2], legacy.coverage_time(&pop, 1.0));
    }

    #[test]
    fn behaviors_are_honoured_through_the_view() {
        let (mut pop, lat, topo, _) = random_world(40, 5);
        pop.profile_mut(NodeId::new(3)).behavior = Behavior::Silent;
        pop.profile_mut(NodeId::new(7)).behavior = Behavior::Delay(SimTime::from_ms(250.0));
        let view = TopologyView::new(&topo, &lat, &pop);
        let legacy = broadcast(&topo, &lat, &pop, NodeId::new(0));
        let mut scratch = BroadcastScratch::new();
        view.broadcast_into(NodeId::new(0), &mut scratch);
        assert_eq!(scratch.arrivals(), legacy.arrivals());
        assert!(scratch.relay_start(NodeId::new(3)).is_infinite());
    }

    #[test]
    fn view_broadcast_convenience_matches_into_propagation() {
        let (pop, lat, topo, _) = random_world(60, 8);
        let view = TopologyView::new(&topo, &lat, &pop);
        let a = view.broadcast(NodeId::new(2));
        let b = broadcast(&topo, &lat, &pop, NodeId::new(2));
        assert_eq!(a, b);
        assert_eq!(a.source(), NodeId::new(2));
        assert_eq!(a.reached(), b.reached());
    }

    #[test]
    fn scratch_reuse_across_network_sizes() {
        let mut scratch = BroadcastScratch::new();
        for n in [10usize, 50, 20] {
            let (pop, lat, topo, _) = random_world(n, n as u64);
            let view = TopologyView::new(&topo, &lat, &pop);
            view.broadcast_into(NodeId::new(0), &mut scratch);
            assert_eq!(scratch.arrivals().len(), n);
            assert_eq!(scratch.reached(), n, "ring keeps the overlay connected");
        }
    }

    type EdgeLog = Vec<(NodeId, NodeId)>;

    /// Applies `ops` (connect/disconnect pairs) to `topo`, returning the
    /// net communication-graph delta the way the engine tracks it: edge
    /// presence compared around each individual operation.
    fn apply_ops(topo: &mut Topology, ops: &[(u32, u32, bool)]) -> (EdgeLog, EdgeLog) {
        let (mut removed, mut added) = (Vec::new(), Vec::new());
        for &(a, b, connect) in ops {
            let (u, v) = (NodeId::new(a), NodeId::new(b));
            if connect {
                if topo.connect(u, v).is_ok() {
                    added.push((u, v));
                }
            } else {
                let was = topo.are_connected(u, v);
                topo.disconnect(u, v);
                if was && !topo.are_connected(u, v) {
                    removed.push((u, v));
                }
            }
        }
        (removed, added)
    }

    #[test]
    fn patched_view_equals_fresh_build() {
        let (pop, lat, mut topo, mut rng) = random_world(60, 11);
        let mut view = TopologyView::new(&topo, &lat, &pop);
        for round in 0..5 {
            let ops: Vec<(u32, u32, bool)> = (0..40)
                .map(|_| {
                    (
                        rng.gen_range(0..60u32),
                        rng.gen_range(0..60u32),
                        rng.gen_range(0..3u8) > 0,
                    )
                })
                .filter(|&(a, b, _)| a != b)
                .collect();
            let (removed, added) = apply_ops(&mut topo, &ops);
            view.apply_rewiring(&RoundDelta::new(removed, added), &lat);
            assert_eq!(
                view,
                TopologyView::new(&topo, &lat, &pop),
                "patched view diverged from a fresh build in round {round}"
            );
        }
    }

    #[test]
    fn world_delta_patch_equals_fresh_build_with_join_and_departure() {
        let (mut pop, mut lat, mut topo, mut rng) = random_world(40, 21);
        let mut view = TopologyView::new(&topo, &lat, &pop);
        for round in 0..4 {
            let (mut removed, mut added) = (Vec::new(), Vec::new());
            // A departure: tear down one live node's edges.
            let depart = pop
                .ids_alive()
                .nth(rng.gen_range(0..pop.alive_count()))
                .unwrap();
            for u in topo.clear_node(depart) {
                removed.push((depart, u));
            }
            pop.retire(depart);
            // A join: spawn, grow the world, bootstrap random edges.
            let mut profile = crate::node::NodeProfile {
                hash_power: pop.mean_alive_hash_power(),
                ..crate::node::NodeProfile::default()
            };
            profile.region = crate::node::Region::Europe;
            let id = pop.spawn(profile);
            topo.grow_to(pop.len());
            lat.extend_for(&pop);
            for _ in 0..4 {
                let u = pop
                    .ids_alive()
                    .nth(rng.gen_range(0..pop.alive_count()))
                    .unwrap();
                if u != id && topo.connect(id, u).is_ok() {
                    added.push((id, u));
                }
            }
            // Plus ordinary rewiring among survivors.
            for _ in 0..20 {
                let a = NodeId::new(rng.gen_range(0..pop.len() as u32));
                let b = NodeId::new(rng.gen_range(0..pop.len() as u32));
                if a == b || !pop.is_alive(a) || !pop.is_alive(b) {
                    continue;
                }
                if rng.gen_range(0..3u8) > 0 {
                    if topo.connect(a, b).is_ok() {
                        added.push((a, b));
                    }
                } else {
                    let was = topo.are_connected(a, b);
                    topo.disconnect(a, b);
                    if was && !topo.are_connected(a, b) {
                        removed.push((a, b));
                    }
                }
            }
            pop.renormalize_hash_power();
            let delta = crate::dynamics::WorldDelta {
                joined: vec![id],
                departed: vec![depart],
            };
            view.apply_world_delta(&delta, &RoundDelta::new(removed, added), &lat, &pop);
            assert_eq!(
                view,
                TopologyView::new(&topo, &lat, &pop),
                "world-delta patch diverged from a fresh build in round {round}"
            );
        }
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let (pop, lat, topo, _) = random_world(30, 4);
        let mut view = TopologyView::new(&topo, &lat, &pop);
        let before = view.clone();
        view.apply_rewiring(&RoundDelta::default(), &lat);
        assert_eq!(view, before);
    }

    #[test]
    fn removed_then_readded_edges_cancel() {
        let e = (NodeId::new(3), NodeId::new(7));
        let delta = RoundDelta::new(vec![e, (NodeId::new(1), NodeId::new(2))], vec![(e.1, e.0)]);
        assert_eq!(delta.removed_count(), 1, "only the uncancelled removal");
        assert_eq!(delta.added_count(), 0);
    }

    #[test]
    fn delta_nets_by_count_parity() {
        // remove → re-add → remove again: net effect is one removal.
        let e = (NodeId::new(3), NodeId::new(7));
        let delta = RoundDelta::new(vec![e, e], vec![(e.1, e.0)]);
        assert_eq!((delta.removed_count(), delta.added_count()), (1, 0));
        // add → remove → re-add: net effect is one addition.
        let delta = RoundDelta::new(vec![e], vec![e, e]);
        assert_eq!((delta.removed_count(), delta.added_count()), (0, 1));
        assert!(RoundDelta::new(vec![e], vec![e]).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn removing_a_missing_edge_panics() {
        let (pop, lat, topo, _) = random_world(20, 5);
        let mut view = TopologyView::new(&topo, &lat, &pop);
        // Nodes 4 and 5 may or may not be linked; pick a pair that is not.
        let mut pair = None;
        'outer: for a in 0..20u32 {
            for b in (a + 1)..20u32 {
                if !topo.are_connected(NodeId::new(a), NodeId::new(b)) {
                    pair = Some((NodeId::new(a), NodeId::new(b)));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("a sparse graph has a non-edge");
        view.apply_rewiring(&RoundDelta::new(vec![(a, b)], Vec::new()), &lat);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn mismatched_population_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let pop = PopulationBuilder::new(5).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, 0);
        let topo = Topology::new(6, ConnectionLimits::paper_default());
        let _ = TopologyView::new(&topo, &lat, &pop);
    }

    #[test]
    fn compacted_view_equals_fresh_build_over_compacted_world() {
        let (mut pop, mut lat, mut topo, mut rng) = random_world(60, 17);
        let mut view = TopologyView::new(&topo, &lat, &pop);
        // Tear down and retire a handful of nodes exactly like the
        // engine's departure path, patching the view along the way.
        for dead in [3u32, 19, 20, 58] {
            let v = NodeId::new(dead);
            let severed: Vec<(NodeId, NodeId)> =
                topo.clear_node(v).into_iter().map(|u| (v, u)).collect();
            pop.retire(v);
            view.apply_rewiring(&RoundDelta::new(severed, Vec::new()), &lat);
        }
        let plan = pop.compaction_plan().expect("four dead slots");
        topo.compact(&plan);
        lat.compact(&plan);
        pop.compact(&plan);
        view.compact(&plan, &pop);
        let fresh = TopologyView::new(&topo, &lat, &pop);
        assert_eq!(view, fresh, "compacted view must equal a fresh build");
        // And the compacted world floods like any other.
        let src = NodeId::new(rng.gen_range(0..pop.len() as u32));
        let mut scratch = BroadcastScratch::new();
        view.broadcast_into(src, &mut scratch);
        let legacy = broadcast(&topo, &lat, &pop, src);
        assert_eq!(scratch.arrivals(), legacy.arrivals());
    }
}
