//! Trace records, sinks, and the [`RunTelemetry`] handle the engine
//! carries.
//!
//! Each simulated round (or each CLI command) becomes one
//! [`TraceRecord`]: a self-describing bundle of phase timings, hot-path
//! counters and scalar facts. Records flow into a [`TraceSink`] — the
//! in-memory sink for tests and the JSONL emitter for `repro --trace` —
//! and one record serializes to exactly one JSON line with a fixed field
//! order, so traces diff cleanly and stream through line-oriented tools.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::{escape, fmt_f64, JsonValue};
use crate::phase::PhaseProfile;
use crate::registry::Registry;

/// Version stamp written into every trace line as `"schema"`.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// One self-describing trace record (a round or a command).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecord {
    /// Record kind: `"round"` for engine rounds, `"command"` for CLI
    /// subcommand summaries.
    pub kind: String,
    /// Run label (algorithm or subcommand name).
    pub run: String,
    /// World seed the run used.
    pub seed: u64,
    /// Round index (0 for command records).
    pub round: u64,
    /// `(phase, seconds)` in execution order.
    pub phases_s: Vec<(String, f64)>,
    /// `(name, value)` hot-path counters in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` scalar facts (λ stats, messages, …) in insertion
    /// order.
    pub values: Vec<(String, f64)>,
}

impl TraceRecord {
    /// A new record of the given kind and run label.
    pub fn new(kind: &str, run: &str, seed: u64, round: u64) -> Self {
        TraceRecord {
            kind: kind.to_string(),
            run: run.to_string(),
            seed,
            round,
            ..TraceRecord::default()
        }
    }

    /// Copies a phase profile's totals into the record.
    pub fn set_phases(&mut self, profile: &PhaseProfile) {
        self.phases_s = profile
            .iter()
            .map(|e| (e.name.clone(), e.seconds))
            .collect();
    }

    /// Appends a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Appends a scalar fact.
    pub fn value(&mut self, name: &str, value: f64) {
        self.values.push((name.to_string(), value));
    }

    /// Looks up a scalar fact.
    pub fn get_value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a counter.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The record's phase timings as a profile (counts are 1 per phase).
    pub fn phase_profile(&self) -> PhaseProfile {
        let mut p = PhaseProfile::new();
        for (name, secs) in &self.phases_s {
            p.add(name, *secs);
        }
        p
    }

    /// Serializes the record as one JSON line (no trailing newline),
    /// with a fixed field order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"schema\":{},\"kind\":\"{}\",\"run\":\"{}\",\"seed\":{},\"round\":{}",
            TRACE_SCHEMA_VERSION,
            escape(&self.kind),
            escape(&self.run),
            self.seed,
            self.round,
        ));
        out.push_str(",\"phases_s\":{");
        for (i, (name, secs)) in self.phases_s.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), fmt_f64(*secs)));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), v));
        }
        out.push_str("},\"values\":{");
        for (i, (name, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), fmt_f64(*v)));
        }
        out.push_str("}}");
        out
    }

    /// Reconstructs a record from one parsed JSON trace line.
    pub fn from_json(v: &JsonValue) -> Result<TraceRecord, String> {
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema field")?;
        if schema != TRACE_SCHEMA_VERSION as u64 {
            return Err(format!("unsupported trace schema {schema}"));
        }
        let field_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("missing {key} field"))
        };
        let mut rec = TraceRecord::new(
            &field_str("kind")?,
            &field_str("run")?,
            v.get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or("missing seed field")?,
            v.get("round")
                .and_then(JsonValue::as_u64)
                .ok_or("missing round field")?,
        );
        let pairs = |key: &str| -> Result<&[(String, JsonValue)], String> {
            v.get(key)
                .and_then(JsonValue::as_object)
                .ok_or(format!("missing {key} object"))
        };
        for (name, val) in pairs("phases_s")? {
            let secs = val.as_f64().ok_or(format!("phase {name} not a number"))?;
            rec.phases_s.push((name.clone(), secs));
        }
        for (name, val) in pairs("counters")? {
            let c = val.as_u64().ok_or(format!("counter {name} not a u64"))?;
            rec.counters.push((name.clone(), c));
        }
        for (name, val) in pairs("values")? {
            // Values may be null (non-finite on the way out).
            let f = val.as_f64().unwrap_or(f64::NAN);
            rec.values.push((name.clone(), f));
        }
        Ok(rec)
    }
}

/// Receives trace records as they are produced.
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Accepts one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes any buffered output.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Buffers records in memory (tests, `repro trace` aggregation).
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records received so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Drains the received records.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }
}

/// Writes each record as one JSON line.
pub struct JsonlSink<W: Write + Send + Sync> {
    out: W,
    /// First write error, if any (surfaced on `flush`).
    error: Option<io::Error>,
}

impl<W: Write + Send + Sync> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncates) `path` and writes JSON lines to it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send + Sync> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }

    /// Consumes the sink, returning the writer (after a final flush).
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush()?;
        Ok(self.out)
    }
}

impl<W: Write + Send + Sync> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let line = rec.to_json();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// A cloneable sink handle: multiple producers (engines, the CLI) can
/// append to one underlying sink through a mutex.
#[derive(Debug, Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<Box<dyn TraceSink>>>,
}

impl SharedSink {
    /// Wraps `sink` for shared use.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Runs `f` against the underlying sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn TraceSink) -> R) -> R {
        let mut guard = self.inner.lock().expect("trace sink poisoned");
        f(guard.as_mut())
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.with(|s| s.record(rec));
    }

    fn flush(&mut self) -> io::Result<()> {
        self.with(|s| s.flush())
    }
}

/// The run-scoped telemetry handle an engine carries.
///
/// Holds the run label/seed (stamped onto every record), a [`Registry`]
/// that accumulates whole-run aggregates, and an optional sink that
/// receives each per-round record. The engine treats `Option<RunTelemetry>`
/// as its on/off switch: `None` means no clock reads, no record
/// construction, no registry updates.
#[derive(Debug)]
pub struct RunTelemetry {
    run: String,
    seed: u64,
    registry: Registry,
    sink: Option<Box<dyn TraceSink>>,
}

impl RunTelemetry {
    /// A handle with no sink: records still update the registry, then
    /// are dropped.
    pub fn new(run: &str, seed: u64) -> Self {
        RunTelemetry {
            run: run.to_string(),
            seed,
            registry: Registry::new(),
            sink: None,
        }
    }

    /// Attaches a sink receiving every record.
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The run label stamped onto records.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// The seed stamped onto records.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fresh record pre-stamped with this run's label and seed.
    pub fn round_record(&self, round: u64) -> TraceRecord {
        TraceRecord::new("round", &self.run, self.seed, round)
    }

    /// The whole-run aggregate registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the aggregate registry.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Folds a record into the registry (counters accumulate, phase
    /// seconds stream into per-phase histograms) and forwards it to the
    /// sink.
    pub fn emit(&mut self, rec: &TraceRecord) {
        for (name, v) in &rec.counters {
            self.registry.incr(name, *v);
        }
        for (name, secs) in &rec.phases_s {
            self.registry.observe(&format!("phase_s/{name}"), *secs);
        }
        if let Some(sink) = &mut self.sink {
            sink.record(rec);
        }
    }

    /// Flushes the sink, surfacing deferred write errors.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> TraceRecord {
        let mut rec = TraceRecord::new("round", "perigee-subset", 7, 42);
        rec.phases_s.push(("propagation".into(), 0.25));
        rec.phases_s.push(("scoring".into(), 0.5));
        rec.counter("gossip_pops", 1234);
        rec.value("mean_lambda90_ms", 812.5);
        rec.value("nan_guard", f64::NAN);
        rec
    }

    #[test]
    fn json_roundtrip_preserves_fields() {
        let rec = sample_record();
        let line = rec.to_json();
        assert!(!line.contains('\n'));
        let parsed = JsonValue::parse(&line).expect("trace line parses");
        let back = TraceRecord::from_json(&parsed).expect("record reconstructs");
        assert_eq!(back.kind, "round");
        assert_eq!(back.run, "perigee-subset");
        assert_eq!(back.seed, 7);
        assert_eq!(back.round, 42);
        assert_eq!(back.get_counter("gossip_pops"), Some(1234));
        assert_eq!(back.get_value("mean_lambda90_ms"), Some(812.5));
        // NaN became null on the way out, NaN again on the way in.
        assert!(back.get_value("nan_guard").unwrap().is_nan());
        assert_eq!(back.phases_s, rec.phases_s);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&sample_record());
        sink.record(&sample_record());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            JsonValue::parse(line).expect("every line parses");
        }
    }

    #[test]
    fn run_telemetry_accumulates_registry() {
        let mut tel = RunTelemetry::new("test", 1).with_sink(Box::new(MemorySink::new()));
        let mut rec = tel.round_record(0);
        rec.counter("gossip_pops", 10);
        tel.emit(&rec);
        let mut rec = tel.round_record(1);
        rec.counter("gossip_pops", 5);
        tel.emit(&rec);
        assert_eq!(tel.registry().counter("gossip_pops"), 15);
    }

    #[test]
    fn shared_sink_fans_in() {
        let shared = SharedSink::new(Box::new(MemorySink::new()));
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(&sample_record());
        b.record(&sample_record());
        let n = shared.with(|s| {
            // Downcast-free check: flush works and both records landed.
            s.flush().unwrap();
            2
        });
        assert_eq!(n, 2);
    }
}
