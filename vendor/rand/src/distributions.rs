//! Sampling distributions: `Standard`, `Uniform`, and the range plumbing
//! behind `Rng::gen_range`.

use crate::{Rng, RngCore};

/// A type that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a type: uniform `[0, 1)` for floats,
/// uniform over the whole value range for integers, fair for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// A uniform distribution over `[low, high)`, precomputed once.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: uniform::SampleUniform + Copy + PartialOrd> Uniform<T> {
    /// Creates the half-open uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform { low, high }
    }

    /// Creates the closed uniform distribution over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics when `low > high`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Uniform { low, high }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(self.low, self.high, rng)
    }
}

/// Uniform-sampling plumbing: per-type samplers and the range adapters
/// consumed by `Rng::gen_range`.
pub mod uniform {
    use super::unit_f64;
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from an interval.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform over `[low, high)`.
        fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform over `[low, high]`.
        fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! sample_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    debug_assert!(low < high);
                    let span = (high as u128).wrapping_sub(low as u128);
                    let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (low as u128).wrapping_add(x) as $t
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    debug_assert!(low <= high);
                    let span = (high as u128).wrapping_sub(low as u128) + 1;
                    let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (low as u128).wrapping_add(x) as $t
                }
            }
        )*};
    }
    sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        #[inline]
        fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            low + unit_f64(rng) * (high - low)
        }
        #[inline]
        fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            low + unit_f64(rng) * (high - low)
        }
    }

    impl SampleUniform for f32 {
        #[inline]
        fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            low + (unit_f64(rng) as f32) * (high - low)
        }
        #[inline]
        fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            low + (unit_f64(rng) as f32) * (high - low)
        }
    }

    /// A range argument accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        ///
        /// # Panics
        ///
        /// Panics when the range is empty.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample from an empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample from an empty range");
            T::sample_inclusive(low, high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(f64::MIN_POSITIVE, 1.0f64);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[crate::Rng::gen_range(&mut rng, 0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
