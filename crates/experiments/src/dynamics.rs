//! Dynamic-world scenarios: steady-state churn and growing networks.
//!
//! The paper's evaluation (§5) freezes the node set; its robustness
//! discussion (§6) asks what happens when the network itself moves. This
//! module runs Perigee on worlds driven by a
//! [`ChurnProcess`](perigee_netsim::ChurnProcess):
//!
//! * [`run_steady_churn`] — a population that turns over at a fixed
//!   per-round fraction while holding its size, the "Ethna-style"
//!   steady-state regime of real overlay measurements;
//! * [`run_growth`] — a world that grows from `scenario.nodes` to a
//!   target size mid-run while Perigee keeps adapting, tracking the
//!   per-round λ90 curve with the constant-space
//!   [`P2Quantile`](perigee_metrics::P2Quantile) estimator instead of
//!   storing every block's value.
//!
//! Both report the engine's snapshot-rebuild counter: a dynamic run pays
//! exactly **one** view build (the first round) — arrivals, departures
//! and rewirings all ride `TopologyView::apply_world_delta`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use perigee_core::{PerigeeConfig, PerigeeEngine, ScoringMethod};
use perigee_metrics::{percentile_or_inf, P2Quantile, Table};
use perigee_netsim::{
    ChurnProcess, ConnectionLimits, PopulationBuilder, SessionDist, SimTime, ValidationDist,
};
use perigee_topology::{RandomBuilder, TopologyBuilder};

use crate::runner::{build_world, WorldLatency};
use crate::scenario::Scenario;

/// The arrival-profile builder matching what [`build_world`] gave the
/// incumbents: same region mix, and the scenario's validation setting
/// *including* the `validation_factor` rescale (scaling an exponential
/// sample by `f` is sampling an exponential of mean `50·f` ms). Without
/// this, joiners would be drawn from the default profile distribution and
/// the churn/growth λ-curves would silently compare two different node
/// populations.
pub fn arrival_profile(scenario: &Scenario) -> PopulationBuilder {
    let mean_ms = 50.0 * scenario.validation_factor;
    let mut builder = PopulationBuilder::new(0);
    builder.validation(if scenario.heterogeneous_validation {
        ValidationDist::Exponential(SimTime::from_ms(mean_ms))
    } else {
        ValidationDist::Constant(SimTime::from_ms(mean_ms))
    });
    builder
}

fn dynamic_engine(
    scenario: &Scenario,
    seed: u64,
    method: ScoringMethod,
) -> (PerigeeEngine<WorldLatency>, StdRng) {
    let world = build_world(scenario, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let topo = RandomBuilder::new().build(
        &world.population,
        &world.latency,
        ConnectionLimits::paper_default(),
        &mut rng,
    );
    let mut config = PerigeeConfig::paper_default(method);
    config.blocks_per_round = scenario.blocks_per_round;
    let mut engine = PerigeeEngine::new(world.population, world.latency, topo, method, config)
        .expect("valid scenario");
    crate::trace::attach(&mut engine, "dynamics", seed);
    (engine, rng)
}

/// Outcome of the steady-state churn scenario.
#[derive(Debug, Clone)]
pub struct SteadyChurnResult {
    /// Per-round p90 of per-block λ90 (ms), P²-estimated.
    pub per_round_p90_ms: Vec<f64>,
    /// Median λ90 over live sources after the run.
    pub final_median90_ms: f64,
    /// Live nodes at the end.
    pub final_alive: usize,
    /// Total slots at the end (initial + every arrival; ids never reused).
    pub final_slots: usize,
    /// Arrivals over the run.
    pub joined: usize,
    /// Departures over the run.
    pub departed: usize,
    /// Snapshot rebuilds the engine paid (1 = the initial build only).
    pub view_rebuilds: usize,
}

impl SteadyChurnResult {
    /// Per-round λ90-p90 table for the harness output.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["round".into(), "p90 λ90 (ms)".into()]);
        for (i, v) in self.per_round_p90_ms.iter().enumerate() {
            t.row(vec![i.to_string(), format!("{v:.1}")]);
        }
        t
    }
}

/// Runs Perigee-Subset in a size-stable world where `churn_fraction` of
/// the population turns over every round.
pub fn run_steady_churn(scenario: &Scenario, seed: u64, churn_fraction: f64) -> SteadyChurnResult {
    let (mut engine, mut rng) = dynamic_engine(scenario, seed, ScoringMethod::Subset);
    engine.set_churn(
        ChurnProcess::steady_state(scenario.nodes, churn_fraction, seed ^ 0x51EA)
            .with_arrival_profile(arrival_profile(scenario)),
    );
    let mut per_round_p90_ms = Vec::with_capacity(scenario.rounds);
    let (mut joined, mut departed) = (0, 0);
    for _ in 0..scenario.rounds {
        let stats = engine.run_round(&mut rng);
        per_round_p90_ms.push(stats.p90_lambda90_ms);
        joined += stats.joined;
        departed += stats.departed;
    }
    engine.topology().assert_invariants();
    SteadyChurnResult {
        per_round_p90_ms,
        final_median90_ms: percentile_or_inf(&engine.evaluate_alive(0.9), 50.0),
        final_alive: engine.population().alive_count(),
        final_slots: engine.population().len(),
        joined,
        departed,
        view_rebuilds: engine.view_rebuilds(),
    }
}

/// Outcome of the mid-run growth scenario.
#[derive(Debug, Clone)]
pub struct GrowthResult {
    /// Nodes at the start.
    pub start_nodes: usize,
    /// Target the arrival schedule aims for.
    pub target_nodes: usize,
    /// Live nodes at the end.
    pub final_nodes: usize,
    /// Per-round p90 of per-block λ90 (ms), P²-estimated — the λ-curve
    /// the growth run is judged by.
    pub per_round_p90_ms: Vec<f64>,
    /// P² estimate of the whole run's round-level p90-λ90 median (a
    /// single constant-space summary of the tracked curve).
    pub run_median_p90_ms: f64,
    /// Total arrivals.
    pub joined: usize,
    /// Snapshot rebuilds the engine paid (1 = the initial build only).
    pub view_rebuilds: usize,
}

impl GrowthResult {
    /// `true` when λ90 stayed finite through the whole growth run.
    pub fn lambda_always_finite(&self) -> bool {
        self.per_round_p90_ms.iter().all(|v| v.is_finite())
    }

    /// Growth trajectory table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["round".into(), "p90 λ90 (ms)".into()]);
        for (i, v) in self.per_round_p90_ms.iter().enumerate() {
            t.row(vec![i.to_string(), format!("{v:.1}")]);
        }
        t
    }
}

/// Runs Perigee-Subset while the world grows from `scenario.nodes` to
/// `target_nodes` over the scenario's rounds: a constant Poisson arrival
/// rate of `(target − start) / rounds` per round, infinite sessions
/// (nobody leaves — pure growth), λ90 tracked per round with the P²
/// streaming estimator.
pub fn run_growth(scenario: &Scenario, seed: u64, target_nodes: usize) -> GrowthResult {
    assert!(target_nodes >= scenario.nodes, "growth scenarios only grow");
    let (mut engine, mut rng) = dynamic_engine(scenario, seed, ScoringMethod::Subset);
    let rate = (target_nodes - scenario.nodes) as f64 / scenario.rounds.max(1) as f64;
    engine.set_churn(
        ChurnProcess::poisson(rate, SessionDist::Constant(f64::INFINITY), seed ^ 0x6047)
            .with_arrival_profile(arrival_profile(scenario)),
    );
    let mut per_round_p90_ms = Vec::with_capacity(scenario.rounds);
    let mut run_summary = P2Quantile::new(50.0);
    let mut joined = 0;
    for _ in 0..scenario.rounds {
        let stats = engine.run_round(&mut rng);
        per_round_p90_ms.push(stats.p90_lambda90_ms);
        run_summary.observe(stats.p90_lambda90_ms);
        joined += stats.joined;
    }
    engine.topology().assert_invariants();
    GrowthResult {
        start_nodes: scenario.nodes,
        target_nodes,
        final_nodes: engine.population().alive_count(),
        per_round_p90_ms,
        run_median_p90_ms: run_summary.estimate_or_inf(),
        joined,
        view_rebuilds: engine.view_rebuilds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 80,
            rounds: 8,
            blocks_per_round: 15,
            seeds: vec![1],
            ..Scenario::paper()
        }
    }

    #[test]
    fn steady_churn_holds_size_and_never_rebuilds() {
        let r = run_steady_churn(&tiny(), 3, 0.05);
        assert_eq!(r.per_round_p90_ms.len(), 8);
        assert!(r.per_round_p90_ms.iter().all(|v| v.is_finite()));
        assert!(r.final_median90_ms.is_finite());
        assert!(r.joined > 0 && r.departed > 0, "5% churn must fire");
        assert_eq!(r.view_rebuilds, 1, "churn must ride the patch path");
        assert_eq!(
            r.final_slots,
            80 + r.joined,
            "ids grow monotonically, never reused"
        );
        assert_eq!(r.final_alive, 80 + r.joined - r.departed);
        // Steady state: the live population stays in the same ballpark.
        assert!(
            (40..=160).contains(&r.final_alive),
            "drifted to {}",
            r.final_alive
        );
        assert_eq!(r.table().len(), 8);
    }

    #[test]
    fn growth_run_tracks_finite_lambda_throughout() {
        let s = tiny();
        let r = run_growth(&s, 5, 200);
        assert_eq!(r.start_nodes, 80);
        assert!(
            r.final_nodes > 120,
            "the world should roughly double, got {}",
            r.final_nodes
        );
        assert!(
            r.lambda_always_finite(),
            "λ90 diverged: {:?}",
            r.per_round_p90_ms
        );
        assert!(r.run_median_p90_ms.is_finite());
        assert_eq!(r.view_rebuilds, 1, "growth must ride the patch path");
        assert_eq!(r.joined, r.final_nodes - 80);
    }

    #[test]
    fn growth_is_deterministic_per_seed() {
        let s = tiny();
        let a = run_growth(&s, 7, 160);
        let b = run_growth(&s, 7, 160);
        assert_eq!(a.per_round_p90_ms, b.per_round_p90_ms);
        assert_eq!(a.final_nodes, b.final_nodes);
        let c = run_growth(&s, 8, 160);
        assert!(
            a.per_round_p90_ms != c.per_round_p90_ms || a.final_nodes != c.final_nodes,
            "different seeds should differ"
        );
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn shrinking_growth_target_panics() {
        let _ = run_growth(&tiny(), 1, 10);
    }
}
