//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;

use perigee::core::{
    ObservationCollector, ScoringMethod, SelectionStrategy, SubsetScoring, VanillaScoring,
};
use perigee::metrics::{percentile, DelayCurve};
use perigee::netsim::{
    broadcast, ConnectionLimits, GeoLatencyModel, LatencyModel, NodeId, PopulationBuilder, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arbitrary connect/disconnect sequences never violate topology limits.
fn topology_ops_strategy() -> impl Strategy<Value = (u8, u8, Vec<(u8, u8, bool)>)> {
    (
        4u8..40, // nodes
        1u8..6,  // dout
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..200),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topology_invariants_under_arbitrary_operations(
        (n, dout, ops) in topology_ops_strategy()
    ) {
        let n = n as usize;
        let mut topo = Topology::new(n, ConnectionLimits::new(dout as usize, Some(4)));
        for (a, b, connect) in ops {
            let u = NodeId::new((a as usize % n) as u32);
            let v = NodeId::new((b as usize % n) as u32);
            if connect {
                let _ = topo.connect(u, v);
            } else {
                let _ = topo.disconnect(u, v);
            }
        }
        topo.assert_invariants();
        // Degrees within bounds.
        for i in 0..n as u32 {
            let u = NodeId::new(i);
            prop_assert!(topo.out_degree(u) <= dout as usize);
            prop_assert!(topo.in_degree(u) <= 4);
        }
        // Edge list is consistent with are_connected.
        for (u, v) in topo.undirected_edges() {
            prop_assert!(topo.are_connected(u, v));
            prop_assert!(topo.are_connected(v, u));
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        mut values in proptest::collection::vec(0.0f64..1e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&values, lo).unwrap();
        let b = percentile(&values, hi).unwrap();
        prop_assert!(a <= b, "percentile must be monotone: p{lo}={a} > p{hi}={b}");
        values.sort_by(f64::total_cmp);
        prop_assert!(a >= values[0] && b <= values[values.len() - 1]);
    }

    #[test]
    fn delay_curve_mean_is_between_extremes(
        values in proptest::collection::vec(0.0f64..1e6, 1..50)
    ) {
        let curve = DelayCurve::from_values(values.clone());
        let min = curve.value_at(0);
        let max = curve.value_at(curve.len() - 1);
        prop_assert!(curve.mean() >= min - 1e-9 && curve.mean() <= max + 1e-9);
        prop_assert!(curve.median() >= min && curve.median() <= max);
    }

    #[test]
    fn broadcast_arrivals_respect_triangle_bound(seed in 0u64..500) {
        // First arrivals can never beat the direct link latency.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 40;
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::paper_default());
        for i in 0..n as u32 {
            let _ = topo.connect(NodeId::new(i), NodeId::new((i + 1) % n as u32));
            let _ = topo.connect(
                NodeId::new(i),
                NodeId::new(rng.gen_range(0..n as u32)),
            );
        }
        let src = NodeId::new(rng.gen_range(0..n as u32));
        let prop_result = broadcast(&topo, &lat, &pop, src);
        for i in 0..n as u32 {
            let v = NodeId::new(i);
            if v == src { continue; }
            prop_assert!(
                prop_result.arrival(v).as_ms() >= lat.delay(src, v).as_ms() - 1e-9,
                "node {v} arrived before the direct-link bound"
            );
        }
    }

    #[test]
    fn subset_group_score_never_exceeds_best_individual(seed in 0u64..200) {
        // Adding neighbors to a group can only help (min over a larger set).
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30;
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::unlimited());
        for i in 1..6u32 {
            topo.connect(NodeId::new(0), NodeId::new(i)).unwrap();
        }
        for i in 6..n as u32 {
            let _ = topo.connect(NodeId::new(i), NodeId::new(i % 6));
        }
        let mut collector = ObservationCollector::new(&topo);
        for _ in 0..10 {
            let src = NodeId::new(rng.gen_range(0..n as u32));
            collector.record(&broadcast(&topo, &lat, &pop, src), &lat);
        }
        let store = collector.finish();
        let obs = store.node(NodeId::new(0));
        let scorer = SubsetScoring::new(3, 90.0);
        let all: Vec<NodeId> = (1..6).map(NodeId::new).collect();
        let group = scorer.group_score(&obs, &all);
        for &u in &all {
            prop_assert!(group <= scorer.group_score(&obs, &[u]) + 1e-9);
        }
    }

    #[test]
    fn vanilla_retains_exactly_the_best_scored(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 25;
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::unlimited());
        let outgoing: Vec<NodeId> = (1..9).map(NodeId::new).collect();
        for &v in &outgoing {
            topo.connect(NodeId::new(0), v).unwrap();
        }
        for i in 9..n as u32 {
            let _ = topo.connect(NodeId::new(i), NodeId::new(1 + (i % 8)));
        }
        let mut collector = ObservationCollector::new(&topo);
        for _ in 0..8 {
            let src = NodeId::new(rng.gen_range(0..n as u32));
            collector.record(&broadcast(&topo, &lat, &pop, src), &lat);
        }
        let store = collector.finish();
        let obs = store.node(NodeId::new(0));
        let mut scorer = VanillaScoring::new(4, 90.0);
        let kept = scorer.retain(NodeId::new(0), &outgoing, obs, &mut rng);
        prop_assert_eq!(kept.len(), 4);
        // Every kept neighbor scores no worse than every dropped one.
        let dropped: Vec<NodeId> =
            outgoing.iter().copied().filter(|u| !kept.contains(u)).collect();
        for &k in &kept {
            for &d in &dropped {
                prop_assert!(
                    scorer.score(&obs, k) <= scorer.score(&obs, d) + 1e-9,
                    "kept {} scored worse than dropped {}", k, d
                );
            }
        }
    }

    #[test]
    fn scoring_strategies_never_invent_neighbors(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30;
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::paper_default());
        for i in 0..n as u32 {
            for _ in 0..4 {
                let _ = topo.connect(NodeId::new(i), NodeId::new(rng.gen_range(0..n as u32)));
            }
        }
        let mut collector = ObservationCollector::new(&topo);
        collector.record(&broadcast(&topo, &lat, &pop, NodeId::new(0)), &lat);
        let all_obs = collector.finish();
        for method in ScoringMethod::ALL {
            let mut strategy = method.strategy(n, 3, 90.0, 50.0);
            for i in 0..n as u32 {
                let v = NodeId::new(i);
                let outgoing = topo.outgoing_vec(v);
                let kept = strategy.retain(v, &outgoing, all_obs.node(v), &mut rng);
                for u in &kept {
                    prop_assert!(outgoing.contains(u), "{method}: invented neighbor");
                }
                // No duplicates.
                let mut sorted = kept.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), kept.len());
            }
        }
    }
}
