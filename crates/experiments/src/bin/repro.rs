//! `repro` — regenerate every figure of the Perigee paper.
//!
//! ```text
//! repro <command> [--nodes N] [--rounds R] [--blocks K] [--seeds a,b,c] [--quick] [--out DIR]
//!
//! Commands:
//!   fig1          Fig. 1  corner-to-corner stretch in the unit square
//!   theorems      Thm 1/2 stretch vs n on random and geometric graphs
//!   fig3a         Fig. 3(a) delay curves, uniform hash power
//!   fig3b         Fig. 3(b) delay curves, exponential hash power
//!   fig4a         Fig. 4(a) validation-delay sweep
//!   fig4b         Fig. 4(b) mining pools with fast links
//!   fig4c         Fig. 4(c) relay network overlay
//!   fig5          Fig. 5  edge-latency histograms
//!   convergence   §5.2 per-round convergence of Perigee-Subset
//!   ablation      parameter sweeps (exploration, percentile, |B|, UCB c)
//!   adversary     free-rider, eclipse and churn robustness
//!   deployment    incremental-deployment advantage
//!   traffic       continuous tx-stream load: per-class λ-curves + ablation
//!   resume        checkpoint/kill/resume workflow + invariant auditor
//!   scale         sketch-backed scale sweep + dense-vs-sketch ablation
//!   trace FILE    phase-breakdown table from a JSONL run trace
//!   all           everything above
//! ```
//!
//! Every command accepts `--trace FILE`: each engine round (and each
//! finished subcommand) appends one self-describing JSON line to FILE —
//! phase timings, hot-path counters, λ-statistics. Read it back with
//! `repro trace FILE`. Tracing never changes results: traced runs are
//! bit-identical to untraced ones.
//!
//! `resume` also accepts `--checkpoint-every K`, `--from FILE` (continue
//! a run from an on-disk snapshot), `--audit-every K` and
//! `--audit-strict` (snapshot the offending round and abort on the
//! first invariant violation).

use std::path::PathBuf;
use std::process::ExitCode;

use perigee_experiments::{
    ablation, adversary, bandwidth, convergence, deployment, discovery, dynamics, faults, fig3,
    fig4, fig5, resume, scale, theory, trace, traffic,
};
use perigee_experiments::{Algorithm, MinerCliqueSpec, RelaySpec, Scenario};
use perigee_metrics::Table;
use perigee_telemetry::{JsonValue, PhaseProfile, PhaseTimer, TraceRecord};

struct Args {
    command: String,
    scenario: Scenario,
    out: Option<PathBuf>,
    /// `resume`: write a checkpoint every this many rounds.
    checkpoint_every: usize,
    /// `resume --from FILE`: continue from an on-disk snapshot.
    from: Option<PathBuf>,
    /// Invariant auditor cadence (0 = off) and strictness.
    audit: resume::AuditOptions,
    /// `--trace FILE`: append one JSONL trace record per engine round.
    trace_out: Option<PathBuf>,
    /// `trace FILE`: the trace to summarize.
    trace_input: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut scenario = Scenario::paper();
    let mut out = None;
    let mut checkpoint_every = 5;
    let mut from = None;
    let mut audit = resume::AuditOptions::default();
    let mut trace_out = None;
    let mut trace_input = None;
    if command == "trace" {
        trace_input = argv.next().map(PathBuf::from);
        if trace_input.is_none() {
            return Err(format!("trace needs a file\n{}", usage()));
        }
    }
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--quick" => {
                let s = Scenario::quick();
                scenario.nodes = s.nodes;
                scenario.rounds = s.rounds;
                scenario.blocks_per_round = s.blocks_per_round;
                scenario.seeds = s.seeds;
            }
            "--nodes" => scenario.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--rounds" => {
                scenario.rounds = value("--rounds")?.parse().map_err(|e| format!("{e}"))?
            }
            "--blocks" => {
                scenario.blocks_per_round =
                    value("--blocks")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seeds" => {
                scenario.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("{e}")))
                    .collect::<Result<Vec<u64>, _>>()?
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--checkpoint-every" => {
                checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if checkpoint_every == 0 {
                    return Err("--checkpoint-every must be positive".to_string());
                }
            }
            "--from" => from = Some(PathBuf::from(value("--from")?)),
            "--trace" => trace_out = Some(PathBuf::from(value("--trace")?)),
            "--audit-every" => {
                audit.every = value("--audit-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--audit-strict" => {
                audit.strict = true;
                audit.every = audit.every.max(1);
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        scenario,
        out,
        checkpoint_every,
        from,
        audit,
        trace_out,
        trace_input,
    })
}

fn usage() -> String {
    "usage: repro <fig1|theorems|fig3a|fig3b|fig4a|fig4b|fig4c|fig5|convergence|ablation|adversary|deployment|discovery|bandwidth|dynamics|faults|traffic|resume|scale|all> \
     [--nodes N] [--rounds R] [--blocks K] [--seeds a,b,c] [--quick] [--out DIR] \
     [--checkpoint-every K] [--from FILE] [--audit-every K] [--audit-strict] [--trace FILE]\n\
     or:    repro trace FILE.jsonl  (phase-breakdown table from a run trace)"
        .to_string()
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Renders `table` and, with `--out`, writes it as CSV. A failed CSV
/// write is a failed command (nonzero exit) — artifacts silently missing
/// from a paper run are worse than a loud abort.
fn emit(table: &Table, out: &Option<PathBuf>, file: &str) -> Result<(), String> {
    print!("{}", table.render());
    if let Some(dir) = out {
        let path = dir.join(file);
        table
            .write_csv(&path)
            .map_err(|e| format!("csv write {}: {e}", path.display()))?;
        println!("[wrote {}]", path.display());
    }
    Ok(())
}

/// `repro trace FILE`: parse every JSONL record and print the aggregate
/// phase breakdown (plus record counts per run label).
fn summarize_trace(path: &PathBuf, out: &Option<PathBuf>) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut profile = PhaseProfile::new();
    let mut rounds = 0u64;
    let mut commands = 0u64;
    let mut runs: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            JsonValue::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        let rec = TraceRecord::from_json(&value)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        match rec.kind.as_str() {
            "round" => rounds += 1,
            _ => commands += 1,
        }
        *runs.entry(rec.run.clone()).or_insert(0) += 1;
        for (name, secs) in &rec.phases_s {
            profile.add(name, *secs);
        }
    }
    banner(&format!("Trace summary: {}", path.display()));
    println!(
        "{} record(s): {} round(s), {} command profile(s)",
        rounds + commands,
        rounds,
        commands
    );
    for (run, n) in &runs {
        println!("  {run}: {n} record(s)");
    }
    emit(&profile.table(), out, "trace_phases.csv")
}

fn run_command(cmd: &str, args: &Args) -> Result<(), String> {
    let scenario = &args.scenario;
    let out = &args.out;
    // The shared phase timer replaces ad-hoc Instant bookkeeping: the
    // subcommand is one lap, and the finished profile goes to the trace
    // (when `--trace` is active) in the same shape as engine phases.
    let mut timer = PhaseTimer::enabled();
    match cmd {
        "trace" => {
            let path = args.trace_input.as_ref().expect("parse_args requires it");
            summarize_trace(path, out)?;
        }
        "fig1" => {
            banner("Figure 1: paths in the unit square");
            let f = theory::run_fig1(scenario.nodes, scenario.seeds[0]);
            let mut t = Table::new(vec!["topology".into(), "path".into(), "stretch".into()]);
            t.row(vec![
                "euclidean (geodesic)".into(),
                format!("{:.3}", f.euclidean),
                "1.00".into(),
            ]);
            t.row(vec![
                "random deg-3 (Fig 1a)".into(),
                format!("{:.3}", f.random_path),
                format!("{:.2}", f.random_stretch()),
            ]);
            t.row(vec![
                "geometric (Fig 1b)".into(),
                format!("{:.3}", f.geometric_path),
                format!("{:.2}", f.geometric_stretch()),
            ]);
            emit(&t, out, "fig1.csv")?;
        }
        "theorems" => {
            banner("Theorems 1 & 2: stretch vs network size");
            let sizes = [250, 500, 1000, 2000];
            let r = theory::run_theorems(&sizes, 2, scenario.seeds[0]);
            emit(&r.table(), out, "theorems.csv")?;
            println!(
                "expect: random stretch grows with n (Thm 1), geometric stays ~constant (Thm 2)"
            );
        }
        "fig3a" | "fig3b" => {
            let exp = cmd == "fig3b";
            banner(if exp {
                "Figure 3(b): exponential hash power"
            } else {
                "Figure 3(a): uniform hash power"
            });
            let s = if exp {
                scenario.clone().with_exponential_hash_power()
            } else {
                scenario.clone()
            };
            let r = fig3::run(&s);
            emit(&r.table(), out, &format!("{cmd}_summary.csv"))?;
            if let Some(dir) = out {
                let path = dir.join(format!("{cmd}_curves.csv"));
                fig3::curves_csv(&r)
                    .write_csv(&path)
                    .map_err(|e| format!("csv write {}: {e}", path.display()))?;
                println!("[wrote {}]", path.display());
            }
            let subset = r.improvement(Algorithm::PerigeeSubset, Algorithm::Random) * 100.0;
            let ucb = r.improvement(Algorithm::PerigeeUcb, Algorithm::Random) * 100.0;
            println!("perigee-subset vs random: {subset:+.1}%  (paper: ~33%)");
            println!("perigee-ucb    vs random: {ucb:+.1}%  (paper: ~11%)");
        }
        "fig4a" => {
            banner("Figure 4(a): validation-delay sweep");
            let r = fig4::run_fig4a(scenario, &fig4::FIG4A_FACTORS);
            emit(&r.table(), out, "fig4a.csv")?;
            println!("expect: improvement shrinks as validation delay grows");
        }
        "fig4b" => {
            banner("Figure 4(b): 10% of nodes hold 90% of hash power");
            let r = fig4::run_fig4b(scenario, MinerCliqueSpec::default());
            emit(&r.table(), out, "fig4b.csv")?;
            println!(
                "perigee closes {:.0}% of the random→ideal gap",
                r.gap_closed() * 100.0
            );
        }
        "fig4c" => {
            banner("Figure 4(c): fast relay network present");
            let r = fig4::run_fig4c(scenario, RelaySpec::default());
            emit(&r.table(), out, "fig4c.csv")?;
            println!(
                "perigee closes {:.0}% of the random→ideal gap",
                r.gap_closed() * 100.0
            );
        }
        "fig5" => {
            banner("Figure 5: edge-latency histograms");
            let r = fig5::run(scenario);
            emit(&r.table(), out, "fig5.csv")?;
            for h in &r.histograms {
                println!("\n{}:", h.algorithm);
                print!("{}", h.histogram.render(40));
            }
        }
        "convergence" => {
            banner("Convergence of Perigee-Subset (§5.2)");
            let r = convergence::run(Algorithm::PerigeeSubset, scenario, scenario.seeds[0]);
            emit(&r.table(), out, "convergence.csv")?;
            println!(
                "total median-λ90 improvement: {:+.1}%",
                r.total_improvement() * 100.0
            );
        }
        "ablation" => {
            banner("Ablation: exploration count");
            let s = scenario.seeds[0];
            emit(
                &ablation::sweep_exploration(scenario, s, &[0, 1, 2, 4]).table(),
                out,
                "ablation_explore.csv",
            )?;
            banner("Ablation: scoring percentile");
            emit(
                &ablation::sweep_percentile(scenario, s, &[50.0, 75.0, 90.0, 99.0]).table(),
                out,
                "ablation_percentile.csv",
            )?;
            banner("Ablation: blocks per round (fixed block budget)");
            emit(
                &ablation::sweep_round_length(scenario, s, &[20, 50, 100, 200]).table(),
                out,
                "ablation_blocks.csv",
            )?;
            banner("Ablation: UCB confidence constant");
            emit(
                &ablation::sweep_ucb_c(scenario, s, &[1.0, 10.0, 50.0, 200.0]).table(),
                out,
                "ablation_ucb_c.csv",
            )?;
        }
        "adversary" => {
            banner("Geo-spoofing (degrades geographic, not Perigee)");
            let r = adversary::run_spoofing(scenario, scenario.seeds[0], scenario.nodes / 20);
            emit(&r.table(), out, "adversary_spoofing.csv")?;
            println!(
                "spoofers degrade geographic by {:+.1}%; perigee ignores claimed locations",
                r.geographic_degradation() * 100.0
            );
            banner("Free-rider starvation");
            let r = adversary::run_free_rider(scenario, scenario.seeds[0]);
            emit(&r.table(), out, "adversary_freerider.csv")?;
            banner("Eclipse attack & recovery");
            let r = adversary::run_eclipse(scenario, scenario.seeds[0]);
            emit(&r.table(), out, "adversary_eclipse.csv")?;
            banner("Churn");
            let r = adversary::run_churn(scenario, scenario.seeds[0], 0.02);
            let mut t = Table::new(vec!["setting".into(), "median λ90 (ms)".into()]);
            t.row(vec![
                "stable".into(),
                format!("{:.1}", r.stable_median90_ms),
            ]);
            t.row(vec![
                format!(
                    "churn ({:.0}%/round, {} joined / {} departed)",
                    r.churn_fraction * 100.0,
                    r.joined,
                    r.departed
                ),
                format!("{:.1}", r.churn_median90_ms),
            ]);
            emit(&t, out, "adversary_churn.csv")?;
        }
        "deployment" => {
            banner("Incremental deployment");
            let mut t = Table::new(vec![
                "adoption".into(),
                "adopters λ90 (ms)".into(),
                "holdouts λ90 (ms)".into(),
                "advantage".into(),
            ]);
            for adoption in [0.1, 0.3, 0.5, 0.9] {
                let r = deployment::run(scenario, scenario.seeds[0], adoption);
                t.row(vec![
                    format!("{:.0}%", adoption * 100.0),
                    format!("{:.1}", r.adopter_median90_ms),
                    format!("{:.1}", r.holdout_median90_ms),
                    format!("{:+.1}%", r.adopter_advantage() * 100.0),
                ]);
            }
            emit(&t, out, "deployment.csv")?;
        }
        "discovery" => {
            banner("Partial peer knowledge (gossiped address books)");
            let caps = [scenario.nodes / 10, scenario.nodes / 4, scenario.nodes / 2];
            let r = discovery::run(scenario, scenario.seeds[0], &caps);
            emit(&r.table(), out, "discovery.csv")?;
            println!(
                "worst partial-view penalty: {:+.1}%",
                r.worst_penalty() * 100.0
            );
        }
        "bandwidth" => {
            banner("Bandwidth heterogeneity (INV/GETDATA, 3-186 Mbit/s)");
            let r = bandwidth::run(scenario, scenario.seeds[0], &[0.0, 0.5, 1.0]);
            emit(&r.table(), out, "bandwidth.csv")?;
            println!("expect: perigee improves in every block-size regime");
        }
        "dynamics" => {
            banner("Steady-state churn (2%/round)");
            let r = dynamics::run_steady_churn(scenario, scenario.seeds[0], 0.02);
            emit(&r.table(), out, "dynamics_churn.csv")?;
            println!(
                "alive {} of {} slots, {} joined / {} departed, {} view build(s), final median λ90 {:.1} ms",
                r.final_alive,
                r.final_slots,
                r.joined,
                r.departed,
                r.view_rebuilds,
                r.final_median90_ms
            );
            banner("Mid-run growth (×10)");
            let r = dynamics::run_growth(scenario, scenario.seeds[0], scenario.nodes * 10);
            emit(&r.table(), out, "dynamics_growth.csv")?;
            println!(
                "{} -> {} nodes ({} joined), λ90 finite throughout: {}, {} view build(s), run-median p90 λ90 {:.1} ms",
                r.start_nodes,
                r.final_nodes,
                r.joined,
                r.lambda_always_finite(),
                r.view_rebuilds,
                r.run_median_p90_ms
            );
        }
        "faults" => {
            // The ablation runs in the paper's short-round UCB regime
            // (§4.2.2 motivates UCB with ~1 block per round): with few
            // blocks a connection's history takes many rounds to
            // accumulate, so the state the gate protects is genuinely
            // expensive to re-learn after a corruption-driven rewire.
            let burst_scenario = Scenario {
                rounds: scenario.rounds * 2,
                blocks_per_round: 5,
                ..scenario.clone()
            };
            banner("Burst loss (UCB, 5 blocks/round): stability gating on (0.175) vs off (∞)");
            let mut summary = Table::new(vec![
                "seed".into(),
                "ungated post-burst λ90 (ms)".into(),
                "gated post-burst λ90 (ms)".into(),
                "post-burst advantage".into(),
                "ungated final λ90 (ms)".into(),
                "gated final λ90 (ms)".into(),
                "gated rounds".into(),
                "rewires while gated".into(),
            ]);
            for (i, &seed) in burst_scenario.seeds.iter().enumerate() {
                let r = faults::run_burst_loss(&burst_scenario, seed);
                if i == 0 {
                    emit(&r.table(), out, "faults_burst_curves.csv")?;
                }
                summary.row(vec![
                    seed.to_string(),
                    format!("{:.1}", r.ungated.checkpoint_median90_ms),
                    format!("{:.1}", r.gated.checkpoint_median90_ms),
                    format!("{:+.1}%", r.gated_advantage() * 100.0),
                    format!("{:.1}", r.ungated.final_median90_ms),
                    format!("{:.1}", r.gated.final_median90_ms),
                    r.gated.gated_rounds.to_string(),
                    r.gated.rewires_during_gated_rounds.to_string(),
                ]);
            }
            emit(&summary, out, "faults_burst_summary.csv")?;
            println!(
                "expect: gated comes out of the burst better (UCB history stays clean) and \
                 ends no worse; rewires-while-gated > 0 (exploration continues)"
            );

            banner("Partition + heal (30% minority)");
            let r = faults::run_partition_heal(scenario, scenario.seeds[0], 0.3);
            emit(&r.table(), out, "faults_partition.csv")?;
            println!(
                "pre-partition median λ90 {:.1} ms -> recovered {:.1} ms ({:+.1}%), {} gated, {} evicted, {} view build(s)",
                r.pre_partition_median90_ms,
                r.recovered_median90_ms,
                r.recovery_gap() * 100.0,
                r.total_gated,
                r.total_evicted,
                r.view_rebuilds
            );

            banner("Regional brownout (Europe x4 for the middle third)");
            let r = faults::run_regional_brownout(scenario, scenario.seeds[0], 4.0);
            emit(&r.table(), out, "faults_brownout.csv")?;
            println!(
                "mean p90 λ90 inside window {:.1} ms vs outside {:.1} ms; final median {:.1} ms",
                r.mean_inside_ms, r.mean_outside_ms, r.final_median90_ms
            );

            banner("Flapping links grid");
            let r =
                faults::run_flap_grid(scenario, scenario.seeds[0], &[0.1, 0.3], &[(6, 1), (6, 3)]);
            emit(&r.table(), out, "faults_flaps.csv")?;
        }
        "traffic" => {
            banner("Combined block + transaction-stream rounds (sketch backend)");
            let r = traffic::run_combined(scenario, scenario.seeds[0]);
            emit(&r.table(), out, "traffic_curves.csv")?;
            println!(
                "{} messages over {} rounds (peak {} in one round, classes {:?}), \
                 final median λ90 {:.1} ms, {} view build(s)",
                r.total_messages,
                r.per_round.len(),
                r.peak_round_messages,
                r.class_names,
                r.final_median90_ms,
                r.view_rebuilds
            );

            banner("Load ablation: blocks-only vs blocks + paper stream");
            let r = traffic::run_ablation(scenario, scenario.seeds[0]);
            emit(&r.table(), out, "traffic_ablation.csv")?;
            println!(
                "blocks-only: median λ90 {:.1} -> {:.1} ms ({:+.1}%); combined (+{} msgs): {:.1} -> {:.1} ms ({:+.1}%)",
                r.blocks_only.start_median90_ms,
                r.blocks_only.final_median90_ms,
                r.blocks_only.improvement() * 100.0,
                r.combined.total_messages,
                r.combined.start_median90_ms,
                r.combined.final_median90_ms,
                r.combined.improvement() * 100.0
            );
            println!("expect: λ90 still improves under combined load");
        }
        "resume" => {
            if let Some(path) = &args.from {
                banner("Resume from on-disk snapshot");
                let r =
                    resume::resume_from_file(path, scenario.rounds, args.audit, out.as_deref())?;
                println!(
                    "resumed from round {} ({} bytes), ran {} more round(s); auditor: {} pass(es), {} violation(s)",
                    r.resumed_from,
                    r.snapshot_bytes,
                    r.stats.len(),
                    r.audits_run,
                    r.audit_violations
                );
            } else {
                banner("Checkpoint / kill / resume determinism workflow");
                let r = resume::run_kill_resume(
                    scenario,
                    scenario.seeds[0],
                    args.checkpoint_every,
                    args.audit,
                    out.as_deref(),
                )?;
                emit(&r.table(), out, "resume.csv")?;
                for path in &r.checkpoints {
                    println!("[wrote {}]", path.display());
                }
                if !r.bit_identical {
                    return Err(
                        "resumed run diverged from the uninterrupted control run".to_string()
                    );
                }
                if r.audit_violations > 0 {
                    return Err(format!(
                        "invariant auditor reported {} violation(s)",
                        r.audit_violations
                    ));
                }
                println!("resumed run is bit-identical to the uninterrupted run; auditor green");
            }
        }
        "scale" => {
            // `scale` defaults its artifacts to artifacts/scale/ so the
            // sweep always leaves a paper trail.
            let out = out
                .clone()
                .or_else(|| Some(PathBuf::from("artifacts/scale")));
            banner("Scale sweep: sketch-backed rounds, one shard per thread");
            let sizes: Vec<usize> = [1, 2, 5, 10].iter().map(|&k| scenario.nodes * k).collect();
            let r = scale::run(scenario, &sizes, 0);
            emit(&r.table(), &out, "scale.csv")?;
            for p in &r.points {
                println!(
                    "{} nodes: {:.3} s/round on {} shard(s), sketch store {:.1}x smaller than dense",
                    p.nodes,
                    p.seconds_per_round,
                    p.shards,
                    p.dense_over_sketch()
                );
            }
            banner("Dense vs sketch ablation (same world, same seed)");
            let c = scale::run_backend_comparison(scenario, scenario.seeds[0]);
            emit(&c.table(), &out, "scale_backends.csv")?;
            if !c.conclusions_agree() {
                return Err(format!(
                    "backend ablation diverged: dense {:+.3} vs sketch {:+.3}",
                    c.dense.improvement(),
                    c.sketch.improvement()
                ));
            }
            println!(
                "both backends improve on the random start; conclusion is backend-independent"
            );
        }
        "all" => {
            for c in [
                "fig1",
                "theorems",
                "fig3a",
                "fig3b",
                "fig4a",
                "fig4b",
                "fig4c",
                "fig5",
                "convergence",
                "ablation",
                "adversary",
                "deployment",
                "discovery",
                "bandwidth",
                "dynamics",
                "faults",
                "traffic",
                "resume",
                "scale",
            ] {
                run_command(c, args)?;
            }
        }
        other => return Err(format!("unknown command {other}\n{}", usage())),
    }
    timer.lap(cmd);
    trace::record_profile(cmd, scenario.seeds[0], timer.profile());
    println!("[{cmd} done in {:.1}s]", timer.profile().total_seconds());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.trace_out {
        if let Err(e) = trace::install_jsonl(path) {
            eprintln!("cannot open trace output {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "scenario: {} nodes, {} rounds x {} blocks, seeds {:?}",
        args.scenario.nodes,
        args.scenario.rounds,
        args.scenario.blocks_per_round,
        args.scenario.seeds
    );
    let run = run_command(&args.command, &args);
    // Flush after the command so deferred trace-write errors fail the
    // run loudly, exactly like CSV artifacts.
    let flushed = trace::flush();
    match (run, flushed) {
        (Ok(()), Ok(())) => ExitCode::SUCCESS,
        (Err(e), _) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
        (Ok(()), Err(e)) => {
            eprintln!("trace write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
