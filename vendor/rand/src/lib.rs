//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the exact API subset the perigee workspace uses: `RngCore`,
//! `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom` and `distributions::{Distribution, Standard, Uniform}`.
//!
//! Generators are fully deterministic given a seed (that is all the
//! simulator requires) but the byte streams are **not** compatible with
//! upstream `rand`; swapping the real crate back in changes sampled worlds,
//! not correctness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range,
    /// `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded via splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10u32);
            assert!(a < 10);
            let b = rng.gen_range(3..=7usize);
            assert!((3..=7).contains(&b));
            let c = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&c));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = dynrng.gen_range(0..100u32);
        assert!(x < 100);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
