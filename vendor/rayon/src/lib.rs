//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the perigee workspace uses on top of `std::thread::scope`:
//!
//! * `items.par_iter().map(f).collect::<Vec<_>>()` over slices,
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` over ranges,
//! * [`join`], [`current_num_threads`],
//! * [`ThreadPoolBuilder`] → [`ThreadPool::install`] to pin the thread
//!   count in a scope (the determinism tests force a single thread).
//!
//! Results always come back in input order, whatever the execution
//! interleaving, so parallel and sequential runs are observably identical
//! for pure per-item work. Work is distributed dynamically: workers pull
//! the next index from a shared atomic counter, which load-balances uneven
//! items (e.g. Dijkstra floods from sources of very different
//! eccentricity) without any unsafe code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations on this thread will use:
/// an installed [`ThreadPool`]'s size, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|p| p.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            mark_worker_thread();
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Pins the *current* thread to sequential execution of nested parallel
/// operations. Called on every spawned worker: real rayon runs nested
/// parallelism on the one shared pool, so a stand-in worker must not
/// recursively spawn its own full set of threads (a fan-out of jobs each
/// fanning out rounds would otherwise run cores² threads).
fn mark_worker_thread() {
    POOL_THREADS.with(|p| p.set(Some(1)));
}

/// Order-preserving parallel indexed map: applies `f` to every index in
/// `0..len` and returns the results in index order.
///
/// This is the primitive behind the iterator facade; it is public so that
/// callers who already have an index space don't need an input slice.
pub fn par_map_index<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = current_num_threads().min(len).max(1);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    mark_worker_thread();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    let mut flat: Vec<(usize, U)> = Vec::with_capacity(len);
    for bucket in &mut buckets {
        flat.append(bucket);
    }
    flat.sort_unstable_by_key(|&(i, _)| i);
    flat.into_iter().map(|(_, u)| u).collect()
}

/// Order-preserving parallel map over disjoint mutable chunks: splits
/// `items` into contiguous chunks of (at most) `chunk_size` elements and
/// applies `f(chunk_index, chunk)` to each, returning the results in
/// chunk order.
///
/// This is the safe split-borrow primitive behind stateful per-node
/// parallelism (each chunk is a disjoint `&mut` slice, so workers mutate
/// their own chunk without locks or unsafe code). Chunks are handed out
/// dynamically from a shared queue, load-balancing uneven work.
///
/// # Panics
///
/// Panics if `chunk_size` is zero while `items` is non-empty.
pub fn par_map_chunks_mut<T, U, F>(items: &mut [T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T]) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunk_count = items.len().div_ceil(chunk_size);
    let threads = current_num_threads().min(chunk_count).max(1);
    if threads <= 1 {
        return items
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(i, chunk)| f(i, chunk))
            .collect();
    }
    let queue: std::sync::Mutex<Vec<(usize, &mut [T])>> =
        std::sync::Mutex::new(items.chunks_mut(chunk_size).enumerate().rev().collect());
    let mut buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    mark_worker_thread();
                    let mut local = Vec::new();
                    loop {
                        let next = queue.lock().expect("chunk queue poisoned").pop();
                        match next {
                            Some((i, chunk)) => local.push((i, f(i, chunk))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    let mut flat: Vec<(usize, U)> = Vec::with_capacity(chunk_count);
    for bucket in &mut buckets {
        flat.append(bucket);
    }
    flat.sort_unstable_by_key(|&(i, _)| i);
    flat.into_iter().map(|(_, u)| u).collect()
}

/// Parallel iterator over `&[T]` (created by
/// [`prelude::IntoParallelRefIterator::par_iter`]).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item through `f` (runs when collected).
    pub fn map<U, F>(self, f: F) -> MapSlice<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        MapSlice {
            items: self.items,
            f,
        }
    }
}

/// A mapped slice iterator, ready to collect.
#[derive(Debug)]
pub struct MapSlice<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapSlice<'a, T, F> {
    /// Runs the map in parallel, returning results in input order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromParallel<U>,
    {
        C::from_vec(par_map_index(self.items.len(), |i| {
            (self.f)(&self.items[i])
        }))
    }
}

/// Parallel iterator over an integer range (created by
/// [`prelude::IntoParallelIterator::into_par_iter`]).
#[derive(Debug)]
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

/// A mapped range iterator, ready to collect.
#[derive(Debug)]
pub struct MapRange<T, F> {
    start: T,
    len: usize,
    f: F,
}

macro_rules! range_par_iter {
    ($($t:ty),* $(,)?) => {$(
        impl RangeParIter<$t> {
            /// Maps every index through `f` (runs when collected).
            pub fn map<U, F>(self, f: F) -> MapRange<$t, F>
            where
                U: Send,
                F: Fn($t) -> U + Sync,
            {
                MapRange { start: self.start, len: self.len, f }
            }
        }

        impl<F> MapRange<$t, F> {
            /// Runs the map in parallel, returning results in input order.
            pub fn collect<C, U>(self) -> C
            where
                U: Send,
                F: Fn($t) -> U + Sync,
                C: FromParallel<U>,
            {
                let start = self.start;
                C::from_vec(par_map_index(self.len, |i| (self.f)(start + i as $t)))
            }
        }

        impl prelude::IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter { start: self.start, len }
            }
        }
    )*};
}
range_par_iter!(u32, u64, usize);

/// Collection types a parallel map can collect into.
pub trait FromParallel<U> {
    /// Builds the collection from the in-order result vector.
    fn from_vec(v: Vec<U>) -> Self;
}

impl<U> FromParallel<U> for Vec<U> {
    fn from_vec(v: Vec<U>) -> Self {
        v
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 means "automatic").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }
}

/// A logical thread pool: parallel operations run inside
/// [`ThreadPool::install`] use its thread count.
///
/// Unlike real rayon there are no persistent workers; the pool only pins
/// the thread count used by parallel operations in the installed scope.
#[derive(Debug)]
pub struct ThreadPool {
    threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count pinned for all parallel
    /// operations it performs on the current thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(self.threads));
        let guard = RestoreThreads(prev);
        let out = f();
        drop(guard);
        out
    }

    /// The pinned thread count (automatic if built with 0/unset).
    pub fn current_num_threads(&self) -> usize {
        self.threads.unwrap_or_else(current_num_threads)
    }
}

struct RestoreThreads(Option<usize>);

impl Drop for RestoreThreads {
    fn drop(&mut self) {
        let prev = self.0;
        POOL_THREADS.with(|p| p.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_matches_sequential() {
        let par: Vec<u32> = (0u32..257).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<u32> = (0u32..257).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            let v: Vec<usize> = (0usize..10).into_par_iter().map(|i| i).collect();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn workers_do_not_nest_parallelism() {
        // A nested par op inside a worker must run sequentially on that
        // worker (one shared pool, as in real rayon), not spawn its own
        // full set of threads.
        let nested_counts: Vec<usize> = (0usize..8)
            .into_par_iter()
            .map(|_| current_num_threads())
            .collect();
        if current_num_threads() > 1 {
            assert!(
                nested_counts.iter().all(|&c| c == 1),
                "workers saw thread counts {nested_counts:?}"
            );
        }
        // And nested maps still produce correct, ordered results.
        let nested: Vec<Vec<u32>> = (0u32..4)
            .into_par_iter()
            .map(|i| (0u32..4).into_par_iter().map(|j| i * 10 + j).collect())
            .collect();
        for (i, inner) in nested.iter().enumerate() {
            assert_eq!(
                *inner,
                (0u32..4).map(|j| i as u32 * 10 + j).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn chunked_mutable_map_mutates_and_preserves_order() {
        let mut data: Vec<u64> = (0..1003).collect();
        let sums: Vec<u64> = par_map_chunks_mut(&mut data, 17, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
            i as u64 + chunk.iter().sum::<u64>()
        });
        assert_eq!(data, (1..=1003).collect::<Vec<_>>());
        let mut expected = Vec::new();
        for (i, chunk) in (0..1003u64).collect::<Vec<_>>().chunks(17).enumerate() {
            expected.push(i as u64 + chunk.iter().map(|x| x + 1).sum::<u64>());
        }
        assert_eq!(sums, expected);
        // Empty input needs no chunk size at all.
        let mut empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = par_map_chunks_mut(&mut empty, 0, |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
