//! Minimal JSON support for trace records.
//!
//! The workspace vendors a work-alike `serde` without a JSON backend, so
//! the trace layer carries its own emitter helpers and a small
//! recursive-descent parser. The parser accepts the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null); the
//! emitter side lives with the types that serialize themselves (see
//! [`crate::TraceRecord::to_json`]) and only needs the string-escape and
//! number-formatting helpers here.

use std::fmt;

/// Escapes `s` for embedding inside a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number.
///
/// JSON has no NaN/Infinity literals, so non-finite values become
/// `null`; integral values keep a trailing `.0` so the field reads as a
/// float on the way back in.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// A parse error with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Objects preserve key order (stored as a vec of pairs); lookups are
/// linear, which is fine for the handful of keys a trace record carries.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses `text` as a single JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered object pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must
                                // follow immediately as \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through; the
                // input is a &str so the sequence is already valid.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(c) if (0x80..0xC0).contains(&c)) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
                b if b < 0x20 => return Err(self.err("unescaped control character")),
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-12.5e2").unwrap(),
            JsonValue::Number(-1250.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn roundtrips_escapes() {
        let original = "quote\" slash\\ tab\t newline\n unicode→ control\u{0001}";
        let encoded = format!("\"{}\"", escape(original));
        let parsed = JsonValue::parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn formats_floats() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
