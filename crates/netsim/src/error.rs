//! Error types for the simulator substrate.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors produced by the simulator substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetsimError {
    /// A population must contain at least one node.
    EmptyPopulation,
    /// Hash powers must be non-negative and not all zero.
    InvalidHashPower,
    /// A node id referred outside the population.
    UnknownNode(NodeId),
    /// A configuration value was out of its valid range.
    InvalidConfig(&'static str),
    /// A world was too large for the message-level engine's packed event
    /// words: node count or directed-edge count at or beyond the 2^30
    /// payload cap ([`PACKED_PAYLOAD_CAP`](crate::gossip::PACKED_PAYLOAD_CAP)).
    /// Reported at snapshot/scratch construction time so oversized worlds
    /// fail loudly instead of silently corrupting packed `u128` events in
    /// release builds.
    WorldTooLarge {
        /// Node count of the rejected world.
        nodes: usize,
        /// Directed CSR edge count of the rejected world.
        directed_edges: usize,
    },
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::EmptyPopulation => write!(f, "population must contain at least one node"),
            NetsimError::InvalidHashPower => {
                write!(f, "hash powers must be non-negative and not all zero")
            }
            NetsimError::UnknownNode(id) => write!(f, "node {id} is not part of the population"),
            NetsimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            NetsimError::WorldTooLarge {
                nodes,
                directed_edges,
            } => write!(
                f,
                "world of {nodes} nodes / {directed_edges} directed edges exceeds \
                 the 2^30 packed-event payload cap"
            ),
        }
    }
}

impl Error for NetsimError {}

/// Errors produced while mutating a [`Topology`](crate::Topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConnectError {
    /// A node cannot connect to itself.
    SelfConnection(NodeId),
    /// The requested edge already exists (in either direction).
    AlreadyConnected(NodeId, NodeId),
    /// The initiating node already has its maximum number of outgoing
    /// connections.
    OutgoingFull(NodeId),
    /// The target node declined because its incoming slots are full (§5.1).
    IncomingFull(NodeId),
    /// A node id referred outside the topology.
    UnknownNode(NodeId),
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::SelfConnection(u) => write!(f, "node {u} cannot connect to itself"),
            ConnectError::AlreadyConnected(u, v) => {
                write!(f, "nodes {u} and {v} are already connected")
            }
            ConnectError::OutgoingFull(u) => {
                write!(f, "node {u} has no free outgoing connection slots")
            }
            ConnectError::IncomingFull(v) => {
                write!(f, "node {v} declined: incoming connection slots full")
            }
            ConnectError::UnknownNode(u) => write!(f, "node {u} is not part of the topology"),
        }
    }
}

impl Error for ConnectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetsimError::UnknownNode(NodeId::new(3));
        assert_eq!(e.to_string(), "node n3 is not part of the population");
        let c = ConnectError::IncomingFull(NodeId::new(9));
        assert!(c.to_string().contains("n9"));
        assert!(c.to_string().starts_with(char::is_lowercase));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetsimError>();
        assert_send_sync::<ConnectError>();
    }
}
