//! Mining pools (§5.4, Fig. 4(b)): 10% of the nodes hold 90% of the hash
//! power and enjoy fast mutual links. Perigee learns to sit close to the
//! miners — not close to the average node — because it scores neighbors by
//! block arrival times and blocks originate from the pools.
//!
//! Run with: `cargo run --release --example mining_pools`

use perigee::experiments::{fig4, MinerCliqueSpec, Scenario};

fn main() {
    let scenario = Scenario {
        nodes: 300,
        rounds: 12,
        blocks_per_round: 50,
        seeds: vec![7],
        ..Scenario::paper()
    };

    println!(
        "simulating {} nodes; 10% of them hold 90% of hash power...",
        scenario.nodes
    );
    let result = fig4::run_fig4b(&scenario, MinerCliqueSpec::default());

    println!("\n{}", result.table().render());
    println!(
        "perigee closes {:.0}% of the random → fully-connected gap",
        result.gap_closed() * 100.0
    );
    println!("(the paper's Fig. 4(b) shows Perigee nearly reaching the ideal curve)");
}
