//! Message-level gossip engine.
//!
//! The fast engine in [`broadcast`](crate::broadcast()) computes arrival times
//! analytically under the paper's §2 model. This module simulates the same
//! flood at the *message* level with an explicit [`EventQueue`]: either
//! direct block pushes ([`GossipMode::Flood`], which must agree exactly with
//! the fast engine — a cross-validation exercised by tests and the
//! integration suite), or Bitcoin's three-leg `INV → GETDATA → BLOCK`
//! exchange ([`GossipMode::InvGetData`], §1.1.2) with optional per-transfer
//! bandwidth delay.

use std::collections::BTreeMap;

use crate::bandwidth::TransferModel;
use crate::event::EventQueue;
use crate::graph::Topology;
use crate::latency::LatencyModel;
use crate::node::{Behavior, NodeId};
use crate::population::Population;
use crate::time::SimTime;

/// How blocks move between peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GossipMode {
    /// Validated blocks are pushed whole to every neighbor; one leg costs
    /// `δ(u,v)`. Equivalent to the analytic engine.
    #[default]
    Flood,
    /// Bitcoin-style announce/request/deliver. Each leg costs one link
    /// latency `δ(u,v)`, so a full delivery costs `3 · δ(u,v)` plus the
    /// transfer time; a node requests the block from the first announcer
    /// only.
    InvGetData,
}

/// Configuration of the message-level engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GossipConfig {
    /// Message exchange pattern.
    pub mode: GossipMode,
    /// Block transfer (bandwidth) model; negligible by default.
    pub transfer: TransferModel,
}

impl GossipConfig {
    /// Flooding with negligible transfer time (matches the fast engine).
    pub fn flood() -> Self {
        GossipConfig {
            mode: GossipMode::Flood,
            transfer: TransferModel::negligible(),
        }
    }

    /// Bitcoin-style INV/GETDATA with the given block size in MB.
    pub fn inv_getdata(block_size_mb: f64) -> Self {
        GossipConfig {
            mode: GossipMode::InvGetData,
            transfer: TransferModel::new(block_size_mb),
        }
    }
}

/// The outcome of gossiping one block.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipOutcome {
    source: NodeId,
    first_arrival: Vec<SimTime>,
    /// Per node: the first time each neighbor announced/delivered the block.
    per_neighbor: Vec<BTreeMap<NodeId, SimTime>>,
}

impl GossipOutcome {
    /// The miner of the block.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// First (full-block) arrival time at `v`.
    pub fn arrival(&self, v: NodeId) -> SimTime {
        self.first_arrival[v.index()]
    }

    /// All first-arrival times indexed by node.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.first_arrival
    }

    /// The first time neighbor `u` announced (INV mode) or delivered (flood
    /// mode) the block to `v`; `None` if it never did.
    pub fn neighbor_delivery(&self, v: NodeId, u: NodeId) -> Option<SimTime> {
        self.per_neighbor[v.index()].get(&u).copied()
    }

    /// Per-neighbor announcement times of node `v`.
    pub fn neighbor_deliveries(&self, v: NodeId) -> &BTreeMap<NodeId, SimTime> {
        &self.per_neighbor[v.index()]
    }

    /// Time to cover `fraction` of the network's hash power.
    pub fn coverage_time(&self, population: &Population, fraction: f64) -> SimTime {
        let mut weighted: Vec<(SimTime, f64)> = self
            .first_arrival
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, population.hash_power(NodeId::new(i as u32))))
            .collect();
        weighted.sort_by_key(|&(t, _)| t);
        let mut acc = 0.0;
        for (t, w) in weighted {
            acc += w;
            if acc >= fraction - 1e-12 {
                return t;
            }
        }
        SimTime::INFINITY
    }
}

#[derive(Debug)]
enum Event {
    /// `from` announces the block to `at` (INV mode only).
    Inv { at: NodeId, from: NodeId },
    /// `at` asks `from` for the block (INV mode only).
    GetData { at: NodeId, from: NodeId },
    /// The full block from `from` lands at `at`.
    Block { at: NodeId, from: NodeId },
    /// `at` finished validating and starts announcing.
    Announce { at: NodeId },
}

/// Simulates one block mined by `source` at time zero.
pub fn gossip_block<L: LatencyModel + ?Sized>(
    topology: &Topology,
    latency: &L,
    population: &Population,
    source: NodeId,
    config: &GossipConfig,
) -> GossipOutcome {
    let n = topology.len();
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut has_block = vec![false; n];
    let mut requested = vec![false; n];
    let mut first_arrival = vec![SimTime::INFINITY; n];
    let mut per_neighbor: Vec<BTreeMap<NodeId, SimTime>> = vec![BTreeMap::new(); n];

    has_block[source.index()] = true;
    first_arrival[source.index()] = SimTime::ZERO;
    // The miner announces immediately (no validation of its own block),
    // unless it is a withholding adversary.
    match population.profile(source).behavior {
        Behavior::Silent => {}
        Behavior::Honest => queue.schedule(SimTime::ZERO, Event::Announce { at: source }),
        Behavior::Delay(d) => queue.schedule(d, Event::Announce { at: source }),
    }

    while let Some((t, event)) = queue.pop() {
        match event {
            Event::Announce { at } => {
                for v in topology.neighbors(at) {
                    let leg = latency.delay(at, v);
                    match config.mode {
                        GossipMode::Flood => {
                            let transfer = config.transfer.transfer_time(population, at, v);
                            queue.schedule(t + leg + transfer, Event::Block { at: v, from: at });
                        }
                        GossipMode::InvGetData => {
                            queue.schedule(t + leg, Event::Inv { at: v, from: at });
                        }
                    }
                }
            }
            Event::Inv { at, from } => {
                per_neighbor[at.index()].entry(from).or_insert(t);
                if !has_block[at.index()] && !requested[at.index()] {
                    requested[at.index()] = true;
                    let leg = latency.delay(at, from);
                    queue.schedule(t + leg, Event::GetData { at: from, from: at });
                }
            }
            Event::GetData { at, from } => {
                // `from` requested the block from `at`; `at` must have it
                // since it announced.
                debug_assert!(has_block[at.index()]);
                let leg = latency.delay(at, from);
                let transfer = config.transfer.transfer_time(population, at, from);
                queue.schedule(t + leg + transfer, Event::Block { at: from, from: at });
            }
            Event::Block { at, from } => {
                if config.mode == GossipMode::Flood {
                    per_neighbor[at.index()].entry(from).or_insert(t);
                }
                if has_block[at.index()] {
                    continue;
                }
                has_block[at.index()] = true;
                first_arrival[at.index()] = t;
                let profile = population.profile(at);
                let validated = t + profile.validation_delay;
                match profile.behavior {
                    Behavior::Honest => queue.schedule(validated, Event::Announce { at }),
                    Behavior::Silent => {}
                    Behavior::Delay(extra) => {
                        queue.schedule(validated + extra, Event::Announce { at })
                    }
                }
            }
        }
    }

    GossipOutcome {
        source,
        first_arrival,
        per_neighbor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::broadcast;
    use crate::graph::ConnectionLimits;
    use crate::latency::GeoLatencyModel;
    use crate::population::PopulationBuilder;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_world(n: usize, seed: u64) -> (Population, GeoLatencyModel, Topology) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = PopulationBuilder::new(n).build(&mut rng).unwrap();
        let lat = GeoLatencyModel::new(&pop, seed);
        let mut topo = Topology::new(n, ConnectionLimits::paper_default());
        // Ring + random chords so the graph is connected.
        for i in 0..n as u32 {
            let _ = topo.connect(NodeId::new(i), NodeId::new((i + 1) % n as u32));
        }
        for _ in 0..n * 3 {
            let u = NodeId::new(rng.gen_range(0..n as u32));
            let v = NodeId::new(rng.gen_range(0..n as u32));
            let _ = topo.connect(u, v);
        }
        (pop, lat, topo)
    }

    #[test]
    fn flood_mode_matches_fast_engine_exactly() {
        let (pop, lat, topo) = random_world(60, 42);
        let cfg = GossipConfig::flood();
        for src in [0u32, 7, 33] {
            let src = NodeId::new(src);
            let fast = broadcast(&topo, &lat, &pop, src);
            let slow = gossip_block(&topo, &lat, &pop, src, &cfg);
            for i in 0..pop.len() as u32 {
                let v = NodeId::new(i);
                let (a, b) = (fast.arrival(v).as_ms(), slow.arrival(v).as_ms());
                assert!(
                    (a - b).abs() < 1e-9,
                    "node {v}: fast {a} vs event-driven {b}"
                );
            }
        }
    }

    #[test]
    fn flood_per_neighbor_matches_fast_engine_delivery() {
        let (pop, lat, topo) = random_world(40, 3);
        let src = NodeId::new(5);
        let fast = broadcast(&topo, &lat, &pop, src);
        let slow = gossip_block(&topo, &lat, &pop, src, &GossipConfig::flood());
        for i in 0..pop.len() as u32 {
            let v = NodeId::new(i);
            for u in topo.neighbors(v) {
                let expect = fast.delivery(&lat, u, v);
                match slow.neighbor_delivery(v, u) {
                    Some(t) => assert!((t.as_ms() - expect.as_ms()).abs() < 1e-9),
                    None => assert!(expect.is_infinite(), "{u}->{v} should deliver"),
                }
            }
        }
    }

    #[test]
    fn inv_mode_is_slower_than_flooding() {
        let (pop, lat, topo) = random_world(50, 9);
        let src = NodeId::new(0);
        let flood = gossip_block(&topo, &lat, &pop, src, &GossipConfig::flood());
        let inv = gossip_block(&topo, &lat, &pop, src, &GossipConfig::inv_getdata(0.0));
        for i in 1..pop.len() as u32 {
            let v = NodeId::new(i);
            assert!(
                inv.arrival(v) >= flood.arrival(v),
                "INV adds round trips at {v}"
            );
            assert!(inv.arrival(v).is_finite(), "INV still reaches {v}");
        }
        // Network-wide, the three-leg exchange costs well under 3x the
        // single-leg flood (validation delays are not tripled).
        let f90 = flood.coverage_time(&pop, 0.9).as_ms();
        let i90 = inv.coverage_time(&pop, 0.9).as_ms();
        assert!(i90 > f90 && i90 < f90 * 3.0, "flood {f90} vs inv {i90}");
    }

    #[test]
    fn inv_records_announcements_from_all_neighbors() {
        let (pop, lat, topo) = random_world(30, 4);
        let src = NodeId::new(2);
        let out = gossip_block(&topo, &lat, &pop, src, &GossipConfig::inv_getdata(0.0));
        for i in 0..pop.len() as u32 {
            let v = NodeId::new(i);
            if v == src {
                continue;
            }
            // Every honest neighbor eventually announces to v.
            assert_eq!(
                out.neighbor_deliveries(v).len(),
                topo.neighbors(v).len(),
                "all neighbors of {v} announce"
            );
        }
    }

    #[test]
    fn bandwidth_slows_flood_delivery() {
        let (pop, lat, topo) = random_world(30, 8);
        let src = NodeId::new(0);
        let small = gossip_block(&topo, &lat, &pop, src, &GossipConfig::flood());
        let big_cfg = GossipConfig {
            mode: GossipMode::Flood,
            transfer: TransferModel::new(1.0),
        };
        let big = gossip_block(&topo, &lat, &pop, src, &big_cfg);
        for i in 1..pop.len() as u32 {
            let v = NodeId::new(i);
            assert!(big.arrival(v) > small.arrival(v));
        }
    }

    #[test]
    fn withholding_miner_delays_everyone() {
        let (mut pop, lat, topo) = random_world(20, 5);
        let src = NodeId::new(0);
        let honest = gossip_block(&topo, &lat, &pop, src, &GossipConfig::flood());
        pop.profile_mut(src).behavior = Behavior::Delay(SimTime::from_ms(500.0));
        let withheld = gossip_block(&topo, &lat, &pop, src, &GossipConfig::flood());
        for i in 1..pop.len() as u32 {
            let v = NodeId::new(i);
            assert!((withheld.arrival(v) - honest.arrival(v)).as_ms() > 499.0);
        }
    }
}
