//! UCBScoring (§4.2.2): confidence-bound neighbor selection.
//!
//! With short rounds (the paper runs UCB with a single block per round) a
//! neighbor's percentile estimate is noisy. UCBScoring therefore keeps every
//! observation made since the connection to a neighbor was established and
//! attaches upper/lower confidence bounds (eqs. 3–4):
//!
//! ```text
//! ucb(u) = p90(T̿u,v) + c·sqrt(log|T̿u,v| / (2|T̿u,v|))
//! lcb(u) = p90(T̿u,v) − c·sqrt(log|T̿u,v| / (2|T̿u,v|))
//! ```
//!
//! At the end of a round, if `max_u lcb(u) > min_u ucb(u)` the node is
//! confident the arg-max neighbor is strictly worse than its best neighbor
//! even accounting for sampling noise, and disconnects exactly that one;
//! otherwise all neighbors are retained.
//!
//! # Parallelism
//!
//! The per-connection history partitions exactly by choosing node: node
//! `v`'s `retain` reads the round matrix (shared, immutable) and mutates
//! only `history[v]`. The strategy therefore stores the history as a flat
//! `Vec<NodeHistory>` indexed by node id and exposes it through the
//! split-borrow [`SelectionStrategy::split_stateful`] API: the engine
//! hands each rayon worker a disjoint `&mut` chunk while all workers
//! share the immutable [`UcbParams`] scorer — bit-identical to the
//! sequential loop by construction, and no `HashMap` in sight.

use rand::RngCore;

use perigee_metrics::percentile_or_inf_mut;
use perigee_netsim::NodeId;

use perigee_netsim::WorldDelta;

use crate::observation::NodeObservations;
use crate::score::{NodeHistory, SelectionStrategy, StatefulScorer, StatefulSplit};

/// The immutable scoring parameters of [`UcbScoring`] — the shared half
/// of its split-borrow decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UcbParams {
    percentile: f64,
    c: f64,
}

/// Confidence-bound scoring with per-connection observation history.
#[derive(Debug, Clone, PartialEq)]
pub struct UcbScoring {
    params: UcbParams,
    /// `history[v]` holds, for each current neighbor of `v`, the finite
    /// normalized observations accumulated since the connection was made.
    history: Vec<NodeHistory>,
}

/// The per-neighbor estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceBounds {
    /// Percentile point estimate.
    pub estimate: f64,
    /// Lower confidence bound (eq. 4).
    pub lcb: f64,
    /// Upper confidence bound (eq. 3).
    pub ucb: f64,
    /// Number of finite samples backing the estimate.
    pub samples: usize,
}

impl UcbParams {
    /// Computes the bounds from a neighbor's accumulated sample buffer. A
    /// neighbor with no finite samples has all-infinite bounds —
    /// maximally distrusted.
    pub fn bounds_of(&self, samples: &[f32], scratch: &mut Vec<f64>) -> ConfidenceBounds {
        let m = samples.len();
        if m == 0 {
            return ConfidenceBounds {
                estimate: f64::INFINITY,
                lcb: f64::INFINITY,
                ucb: f64::INFINITY,
                samples: 0,
            };
        }
        scratch.clear();
        scratch.extend(samples.iter().map(|&t| t as f64));
        let estimate = percentile_or_inf_mut(scratch, self.percentile);
        // log(1)/2 = 0 gives a zero-width interval at m = 1, matching the
        // formula; widths shrink as O(sqrt(log m / m)).
        let width = self.c * ((m as f64).ln() / (2.0 * m as f64)).sqrt();
        ConfidenceBounds {
            estimate,
            lcb: estimate - width,
            ucb: estimate + width,
            samples: m,
        }
    }
}

impl StatefulScorer for UcbParams {
    fn retain_stateful(
        &self,
        _v: NodeId,
        outgoing: &[NodeId],
        observations: NodeObservations<'_>,
        state: &mut NodeHistory,
    ) -> Vec<NodeId> {
        // Fold this round into the per-connection history first — only
        // finite timestamps enter `T̿u,v` (the paper filters `t̃ < ∞`).
        for &u in outgoing {
            state.absorb(u, observations.times_for(u));
        }
        if outgoing.len() <= 1 {
            return outgoing.to_vec();
        }
        let mut scratch = Vec::new();
        let bounds: Vec<(NodeId, ConfidenceBounds)> = outgoing
            .iter()
            .map(|&u| (u, self.bounds_of(state.samples_for(u), &mut scratch)))
            .collect();
        // max lcb (worst plausible neighbor) vs min ucb (best pessimistic).
        let (worst, worst_b) = bounds
            .iter()
            .max_by(|a, b| a.1.lcb.total_cmp(&b.1.lcb).then(b.0.cmp(&a.0)))
            .expect("outgoing non-empty");
        let min_ucb = bounds
            .iter()
            .map(|(_, b)| b.ucb)
            .fold(f64::INFINITY, f64::min);
        // Drop the worst only when its *lower* bound clears every upper
        // bound — i.e. it is worse than some neighbor with confidence.
        // (A neighbor that never delivered has lcb = ∞ and is dropped as
        // soon as any peer has a finite ucb.)
        if worst_b.lcb > min_ucb {
            let dropped = *worst;
            outgoing.iter().copied().filter(|&u| u != dropped).collect()
        } else {
            outgoing.to_vec()
        }
    }
}

impl UcbScoring {
    /// Creates the strategy for `n` nodes with confidence constant `c`
    /// scoring at `percentile`.
    pub fn new(n: usize, percentile: f64, c: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percentile),
            "percentile must be in [0, 100]"
        );
        assert!(c >= 0.0, "confidence constant must be non-negative");
        UcbScoring {
            params: UcbParams { percentile, c },
            history: vec![NodeHistory::default(); n],
        }
    }

    /// Computes the bounds for neighbor `u` of `v` from the accumulated
    /// history (call after [`Self::absorb`]).
    pub fn bounds(&self, v: NodeId, u: NodeId) -> ConfidenceBounds {
        let mut scratch = Vec::new();
        self.params
            .bounds_of(self.history[v.index()].samples_for(u), &mut scratch)
    }

    /// Folds one round of observations into the history of `v`'s current
    /// outgoing neighbors. Only finite timestamps enter `T̿u,v` (the paper
    /// filters `t̃ < ∞`).
    pub fn absorb(&mut self, v: NodeId, outgoing: &[NodeId], observations: NodeObservations<'_>) {
        let h = &mut self.history[v.index()];
        for &u in outgoing {
            h.absorb(u, observations.times_for(u));
        }
    }

    /// Number of stored samples for a (v, u) pair — for tests/inspection.
    pub fn sample_count(&self, v: NodeId, u: NodeId) -> usize {
        self.history[v.index()].sample_count(u)
    }
}

impl SelectionStrategy for UcbScoring {
    fn retain(
        &mut self,
        v: NodeId,
        outgoing: &[NodeId],
        observations: NodeObservations<'_>,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        self.params
            .retain_stateful(v, outgoing, observations, &mut self.history[v.index()])
    }

    fn split_stateful(&mut self) -> Option<StatefulSplit<'_>> {
        Some(StatefulSplit {
            scorer: &self.params,
            states: &mut self.history,
        })
    }

    fn on_disconnect(&mut self, v: NodeId, u: NodeId) {
        self.history[v.index()].forget(u);
    }

    /// The checkpointed state is exactly the per-connection history
    /// (`T̿u,v` for every live connection) — the parameters travel in the
    /// run's [`PerigeeConfig`](crate::PerigeeConfig) and the strategy is
    /// rebuilt from them on resume.
    fn snapshot_state(&self) -> Vec<u8> {
        use serde::bin::Encode;
        self.history.to_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), serde::bin::DecodeError> {
        use serde::bin::{Decode, DecodeError};
        let history: Vec<NodeHistory> = Decode::from_bytes(bytes)?;
        if history.len() != self.history.len() {
            return Err(DecodeError::new(
                "score-state snapshot covers a different world size",
            ));
        }
        self.history = history;
        Ok(())
    }

    fn audit(&self, out: &mut Vec<crate::audit::AuditViolation>) {
        for (v, h) in self.history.iter().enumerate() {
            h.audit(v, out);
        }
    }

    /// The stateful churn hook: the history array is resized to cover
    /// new slots (blank — a joiner starts with no beliefs), every
    /// departed/reset node's own history is dropped wholesale (its
    /// connections are gone with it; survivors' beliefs *about* it are
    /// forgotten edge-by-edge through
    /// [`SelectionStrategy::on_disconnect`]), and surviving buffers age
    /// by `staleness` so confidence built against a departed world decays
    /// instead of keeping stale neighbors pinned (eqs. 3–4 tighten with
    /// sample count — under churn that certainty must be re-earned).
    fn on_world_delta(&mut self, delta: &WorldDelta, n: usize, staleness: f64) {
        if self.history.len() < n {
            self.history.resize(n, NodeHistory::default());
        }
        for &v in &delta.departed {
            self.history[v.index()].clear();
        }
        if staleness < 1.0 {
            for h in &mut self.history {
                h.decay(staleness);
            }
        }
    }

    fn compact(&mut self, plan: &perigee_netsim::IdRemap) {
        assert_eq!(
            plan.old_len(),
            self.history.len(),
            "compaction plan covers a different world size"
        );
        let mut i = 0u32;
        self.history.retain(|_| {
            let keep = plan.new_id(NodeId::new(i)).is_some();
            i += 1;
            keep
        });
        for h in &mut self.history {
            h.compact(plan);
        }
    }

    fn name(&self) -> &'static str {
        "perigee-ucb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{ObservationCollector, ObservationStore};
    use perigee_netsim::{
        broadcast, ConnectionLimits, MetricLatencyModel, NodeProfile, Population, SimTime, Topology,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_world(dists: &[f64]) -> (Population, MetricLatencyModel, Topology) {
        let mut coords = vec![0.0];
        coords.extend_from_slice(dists);
        let profiles: Vec<NodeProfile> = coords
            .iter()
            .map(|&x| NodeProfile {
                coords: vec![x],
                hash_power: 1.0,
                validation_delay: SimTime::from_ms(0.0),
                ..NodeProfile::default()
            })
            .collect();
        let pop = Population::from_profiles(profiles).unwrap();
        let lat = MetricLatencyModel::new(&pop, 1.0);
        let n = coords.len();
        let mut topo = Topology::new(n, ConnectionLimits::unlimited());
        for i in 1..n {
            topo.connect(NodeId::new(0), NodeId::new(i as u32)).unwrap();
        }
        (pop, lat, topo)
    }

    fn one_round(
        pop: &Population,
        lat: &MetricLatencyModel,
        topo: &Topology,
        src: u32,
    ) -> ObservationStore {
        let mut c = ObservationCollector::new(topo);
        c.record(&broadcast(topo, lat, pop, NodeId::new(src)), lat);
        c.finish()
    }

    #[test]
    fn accumulates_history_across_rounds() {
        let (pop, lat, topo) = star_world(&[5.0, 50.0]);
        let mut s = UcbScoring::new(3, 90.0, 1.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2)];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..4 {
            let store = one_round(&pop, &lat, &topo, 1);
            let _ = s.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng,
            );
        }
        assert_eq!(s.sample_count(NodeId::new(0), NodeId::new(1)), 4);
        assert_eq!(s.sample_count(NodeId::new(0), NodeId::new(2)), 4);
    }

    #[test]
    fn drops_a_clearly_worse_neighbor_once_confident() {
        let (pop, lat, topo) = star_world(&[5.0, 500.0]);
        // c small => narrow intervals => quick separation.
        let mut s = UcbScoring::new(3, 90.0, 10.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2)];
        let mut rng = StdRng::seed_from_u64(0);
        let mut kept = outgoing.clone();
        for _ in 0..20 {
            let store = one_round(&pop, &lat, &topo, 1);
            kept = s.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng,
            );
            if kept.len() < outgoing.len() {
                break;
            }
        }
        assert_eq!(kept, vec![NodeId::new(1)], "the distant neighbor is cut");
    }

    #[test]
    fn keeps_statistically_indistinguishable_neighbors() {
        // Diamond world: chooser 0 at the left tip, neighbors 1 and 2 on
        // symmetric corners, miner 3 at the right tip. Both neighbors
        // deliver every block at exactly the same time, so their bounds
        // coincide and neither may ever be dropped.
        let coords: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],  // 0 chooser
            vec![1.0, 0.5],  // 1
            vec![1.0, -0.5], // 2
            vec![2.0, 0.0],  // 3 miner
        ];
        let profiles: Vec<NodeProfile> = coords
            .into_iter()
            .map(|c| NodeProfile {
                coords: c,
                hash_power: 1.0,
                validation_delay: SimTime::from_ms(0.0),
                ..NodeProfile::default()
            })
            .collect();
        let pop = Population::from_profiles(profiles).unwrap();
        let lat = MetricLatencyModel::new(&pop, 100.0);
        let mut topo = Topology::new(4, ConnectionLimits::unlimited());
        topo.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        topo.connect(NodeId::new(0), NodeId::new(2)).unwrap();
        topo.connect(NodeId::new(3), NodeId::new(1)).unwrap();
        topo.connect(NodeId::new(3), NodeId::new(2)).unwrap();

        let mut s = UcbScoring::new(4, 90.0, 1.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2)];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let mut c = ObservationCollector::new(&topo);
            c.record(&broadcast(&topo, &lat, &pop, NodeId::new(3)), &lat);
            let store = c.finish();
            let kept = s.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng,
            );
            assert_eq!(kept.len(), 2, "equal neighbors are never separated");
        }
    }

    #[test]
    fn confidence_width_shrinks_with_samples() {
        let (pop, lat, topo) = star_world(&[5.0, 50.0]);
        let mut s = UcbScoring::new(3, 90.0, 1.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2)];
        for _ in 0..2 {
            let store = one_round(&pop, &lat, &topo, 1);
            s.absorb(NodeId::new(0), &outgoing, store.node(NodeId::new(0)));
        }
        let b2 = s.bounds(NodeId::new(0), NodeId::new(1));
        let w2 = b2.ucb - b2.lcb;
        for _ in 0..30 {
            let store = one_round(&pop, &lat, &topo, 1);
            s.absorb(NodeId::new(0), &outgoing, store.node(NodeId::new(0)));
        }
        let b32 = s.bounds(NodeId::new(0), NodeId::new(1));
        let w32 = b32.ucb - b32.lcb;
        assert!(w32 < w2, "width {w32} should shrink below {w2}");
        assert_eq!(b32.samples, 32);
    }

    #[test]
    fn unseen_neighbor_has_infinite_bounds() {
        let s = UcbScoring::new(2, 90.0, 1.0);
        let b = s.bounds(NodeId::new(0), NodeId::new(1));
        assert!(b.estimate.is_infinite() && b.lcb.is_infinite() && b.ucb.is_infinite());
        assert_eq!(b.samples, 0);
    }

    #[test]
    fn never_delivering_neighbor_is_dropped() {
        let (mut pop, lat, topo) = star_world(&[5.0, 50.0]);
        pop.profile_mut(NodeId::new(2)).behavior = perigee_netsim::Behavior::Silent;
        let mut s = UcbScoring::new(3, 90.0, 1.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2)];
        let mut rng = StdRng::seed_from_u64(0);
        let mut kept = outgoing.clone();
        for _ in 0..5 {
            let store = one_round(&pop, &lat, &topo, 1);
            kept = s.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng,
            );
            if kept.len() < 2 {
                break;
            }
        }
        assert_eq!(kept, vec![NodeId::new(1)]);
    }

    #[test]
    fn world_delta_resizes_clears_and_decays() {
        let (pop, lat, topo) = star_world(&[5.0, 50.0]);
        let mut s = UcbScoring::new(3, 90.0, 1.0);
        let outgoing = vec![NodeId::new(1), NodeId::new(2)];
        for _ in 0..10 {
            let store = one_round(&pop, &lat, &topo, 1);
            s.absorb(NodeId::new(0), &outgoing, store.node(NodeId::new(0)));
        }
        assert_eq!(s.sample_count(NodeId::new(0), NodeId::new(1)), 10);

        // A grown world with node 2 departed and 50% staleness.
        let delta = WorldDelta {
            joined: vec![NodeId::new(3), NodeId::new(4)],
            departed: vec![NodeId::new(2)],
        };
        s.on_world_delta(&delta, 5, 0.5);
        assert_eq!(
            s.sample_count(NodeId::new(0), NodeId::new(1)),
            5,
            "survivor history halves"
        );
        assert_eq!(
            s.sample_count(NodeId::new(2), NodeId::new(0)),
            0,
            "departed node's own beliefs are gone"
        );
        // The new slots are usable immediately.
        assert!(s
            .bounds(NodeId::new(4), NodeId::new(0))
            .estimate
            .is_infinite());
        // staleness 1.0 is a pure resize.
        s.on_world_delta(&WorldDelta::default(), 5, 1.0);
        assert_eq!(s.sample_count(NodeId::new(0), NodeId::new(1)), 5);
    }

    #[test]
    fn disconnect_forgets_history() {
        let (pop, lat, topo) = star_world(&[5.0]);
        let mut s = UcbScoring::new(2, 90.0, 1.0);
        let outgoing = vec![NodeId::new(1)];
        let store = one_round(&pop, &lat, &topo, 1);
        s.absorb(NodeId::new(0), &outgoing, store.node(NodeId::new(0)));
        assert_eq!(s.sample_count(NodeId::new(0), NodeId::new(1)), 1);
        s.on_disconnect(NodeId::new(0), NodeId::new(1));
        assert_eq!(s.sample_count(NodeId::new(0), NodeId::new(1)), 0);
    }

    #[test]
    fn single_neighbor_is_always_retained() {
        let (pop, lat, topo) = star_world(&[5.0]);
        let mut s = UcbScoring::new(2, 90.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let store = one_round(&pop, &lat, &topo, 1);
        let kept = s.retain(
            NodeId::new(0),
            &[NodeId::new(1)],
            store.node(NodeId::new(0)),
            &mut rng,
        );
        assert_eq!(kept, vec![NodeId::new(1)]);
    }

    #[test]
    fn split_halves_agree_with_sequential_retain() {
        let (pop, lat, topo) = star_world(&[5.0, 50.0, 500.0]);
        let outgoing: Vec<NodeId> = (1..4).map(NodeId::new).collect();
        let mut seq = UcbScoring::new(4, 90.0, 10.0);
        let mut split = UcbScoring::new(4, 90.0, 10.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let store = one_round(&pop, &lat, &topo, 1);
            let a = seq.retain(
                NodeId::new(0),
                &outgoing,
                store.node(NodeId::new(0)),
                &mut rng,
            );
            let b = {
                let StatefulSplit { scorer, states } =
                    split.split_stateful().expect("ucb is split-stateful");
                scorer.retain_stateful(
                    NodeId::new(0),
                    &outgoing,
                    store.node(NodeId::new(0)),
                    &mut states[0],
                )
            };
            assert_eq!(a, b, "split-borrow path must match retain exactly");
        }
        assert_eq!(seq, split, "histories evolve identically");
    }
}
