//! Simulation time.
//!
//! All delays in the simulator are wall-clock milliseconds represented by
//! [`SimTime`], a thin `f64` newtype with a *total* order (via
//! [`f64::total_cmp`]) so it can live in heaps and be sorted without panics.
//! `SimTime::INFINITY` encodes "never" (e.g. a block that was never relayed,
//! the `t = ∞` convention of the paper's observation sets).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in (or duration of) simulated time, in milliseconds.
///
/// `SimTime` is totally ordered: `NaN` sorts after `+∞` per
/// [`f64::total_cmp`], but the API never produces `NaN` from finite inputs.
///
/// # Examples
///
/// ```
/// use perigee_netsim::SimTime;
///
/// let a = SimTime::from_ms(12.5);
/// let b = SimTime::from_ms(30.0);
/// assert!(a < b);
/// assert_eq!((a + b).as_ms(), 42.5);
/// assert!(SimTime::INFINITY.is_infinite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero time (simulation start / zero delay).
    pub const ZERO: SimTime = SimTime(0.0);
    /// "Never": used for blocks that are never delivered.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: f64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs * 1_000.0)
    }

    /// Returns the time in milliseconds.
    #[inline]
    pub const fn as_ms(self) -> f64 {
        self.0
    }

    /// Returns the time in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Returns `true` if this time is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns `true` if this time is `+∞` (the "never delivered" marker).
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

mod codec {
    //! Checkpoint codec impls (see `serde::bin`): the raw IEEE-754 bit
    //! pattern, so `∞` and every finite delay round-trip exactly.

    use serde::bin::{Decode, DecodeError, Encode, Reader};

    use super::SimTime;

    impl Encode for SimTime {
        #[inline]
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
    }

    impl Decode for SimTime {
        #[inline]
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(SimTime(f64::decode(r)?))
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for SimTime {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.3}ms", self.0)
        }
    }
}

impl From<f64> for SimTime {
    fn from(ms: f64) -> Self {
        SimTime(ms)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_infinity_sorts_last() {
        let mut v = [
            SimTime::INFINITY,
            SimTime::from_ms(3.0),
            SimTime::ZERO,
            SimTime::from_ms(1.5),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[1], SimTime::from_ms(1.5));
        assert_eq!(v[2], SimTime::from_ms(3.0));
        assert!(v[3].is_infinite());
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(2.5);
        assert_eq!((a + b).as_ms(), 12.5);
        assert_eq!((a - b).as_ms(), 7.5);
        assert_eq!((a * 2.0).as_ms(), 20.0);
        assert_eq!((a / 2.0).as_ms(), 5.0);
        assert_eq!(SimTime::from_secs(1.5).as_ms(), 1500.0);
        assert_eq!(SimTime::from_ms(250.0).as_secs(), 0.25);
    }

    #[test]
    fn infinity_propagates_through_addition() {
        let t = SimTime::INFINITY + SimTime::from_ms(5.0);
        assert!(t.is_infinite());
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(SimTime::INFINITY), a);
        assert_eq!(a.max(SimTime::INFINITY), SimTime::INFINITY);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(1.2345).to_string(), "1.234ms");
        assert_eq!(SimTime::INFINITY.to_string(), "∞");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1.0, 2.0, 3.0].iter().map(|&m| SimTime::from_ms(m)).sum();
        assert_eq!(total.as_ms(), 6.0);
    }
}
