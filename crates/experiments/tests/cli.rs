//! Exit-code contract of the `repro` binary: bad invocations fail fast
//! with the usage string on stderr and a non-zero status; good ones
//! exit zero. Driven through the real binary (`CARGO_BIN_EXE_repro`),
//! not a parser unit test, so the `main` wiring is covered too.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success(), "bare invocation must fail");
    assert!(
        stderr(&out).contains("usage: repro"),
        "stderr must carry the usage string, got: {}",
        stderr(&out)
    );
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    let out = repro(&["fig99"]);
    assert!(!out.status.success(), "unknown subcommand must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown command fig99"), "got: {err}");
    assert!(err.contains("usage: repro"), "got: {err}");
}

#[test]
fn unknown_flag_prints_usage_and_fails() {
    let out = repro(&["fig1", "--frobnicate"]);
    assert!(!out.status.success(), "unknown flag must fail");
    let err = stderr(&out);
    assert!(err.contains("unknown flag --frobnicate"), "got: {err}");
    assert!(err.contains("usage: repro"), "got: {err}");
}

#[test]
fn flag_missing_its_value_fails() {
    let out = repro(&["fig1", "--nodes"]);
    assert!(!out.status.success(), "dangling --nodes must fail");
    assert!(stderr(&out).contains("--nodes needs a value"));
}

#[test]
fn unparsable_flag_value_fails() {
    let out = repro(&["fig1", "--rounds", "many"]);
    assert!(!out.status.success(), "non-numeric --rounds must fail");
}

#[test]
fn zero_checkpoint_interval_is_rejected() {
    let out = repro(&["resume", "--checkpoint-every", "0"]);
    assert!(!out.status.success(), "--checkpoint-every 0 must fail");
    assert!(stderr(&out).contains("--checkpoint-every must be positive"));
}

#[test]
fn corrupt_snapshot_is_a_structured_error_not_a_panic() {
    let dir = std::env::temp_dir().join("repro-cli-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.prgs");
    std::fs::write(&path, b"not a snapshot at all").unwrap();
    let out = repro(&["resume", "--quick", "--from", path.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt snapshot must fail");
    let err = stderr(&out);
    assert!(
        err.contains("bad magic"),
        "must name the structured snapshot error, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must not panic on corrupt input, got: {err}"
    );
}

#[test]
fn valid_quick_command_exits_zero() {
    let out = repro(&["fig1", "--quick", "--nodes", "40"]);
    assert!(
        out.status.success(),
        "fig1 --quick must succeed, stderr: {}",
        stderr(&out)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Figure 1"));
}

#[test]
fn quick_resume_roundtrip_exits_zero() {
    let out = repro(&[
        "resume", "--quick", "--nodes", "50", "--rounds", "8", "--blocks", "4",
    ]);
    assert!(
        out.status.success(),
        "resume --quick must succeed, stderr: {}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bit-identical"), "got: {stdout}");
}
