//! # perigee-bench
//!
//! Criterion benchmarks regenerating the Perigee paper's figures (see the
//! `benches/` directory): `fig3`, `fig4`, `fig5`, `theory`, `ablation`,
//! the `micro` substrate benchmarks, the `propagation` engine comparison
//! and the 10k-node `scale` group. The library carries only the tiny
//! helpers shared by the hand-timed (non-criterion) bench sections.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Mirrors criterion's name filtering for hand-written (non-criterion)
/// bench sections: extra non-flag CLI args are substring filters on
/// benchmark ids, and criterion only gates its own `bench_function`
/// sampling — bench fn bodies always run. Gating world construction,
/// hand-timed speedup reports and baseline-JSON writes on the same rule
/// keeps a filtered invocation (e.g. CI's `-- round` or `-- scale_smoke`)
/// from re-running the other sections or silently overwriting a
/// checked-in baseline.
pub fn section_enabled(id: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()))
}

/// Median of a small hand-timed sample set (sorts in place) — the
/// aggregation every speedup report in this crate uses.
pub fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Version of the header every `BENCH_*.json` artifact at the workspace
/// root carries. Bump when the header fields themselves change shape;
/// bench-specific fields may evolve freely underneath it.
///
/// History: **1** — `schema_version`/`bench`/`config`/`config_digest`;
/// **2** — adds the `memory` object (`peak_bytes`, `bytes_per_edge`)
/// so perf trajectories track space alongside time.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// The memory footprint a `BENCH_*.json` artifact reports next to its
/// timings: the **dominant data-structure footprint of the benched
/// workload** (the observation/delivery store for round benches, the
/// event queue for the pq bench, the serialized envelope for the
/// checkpoint bench) and that footprint normalized per directed CSR
/// edge. Per-edge is the scaling lens: a backend whose `bytes_per_edge`
/// is independent of blocks-per-round is sublinear in round size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryFootprint {
    /// Peak bytes held by the workload's dominant structure.
    pub peak_bytes: usize,
    /// `peak_bytes` divided by the world's directed edge count.
    pub bytes_per_edge: f64,
}

impl MemoryFootprint {
    /// Footprint of `peak_bytes` over a world of `directed_edges` edges.
    pub fn per_edge(peak_bytes: usize, directed_edges: usize) -> Self {
        MemoryFootprint {
            peak_bytes,
            bytes_per_edge: peak_bytes as f64 / directed_edges.max(1) as f64,
        }
    }
}

/// Digest of a bench's configuration knobs (the `config` string passed
/// to [`bench_json`]): FNV-1a 64 over the exact string, rendered as
/// `fnv64:<16 hex digits>`. Two artifacts with the same digest were
/// produced under the same configuration and are directly comparable;
/// a digest change flags a knob change masquerading as a perf change.
pub fn config_digest(config: &str) -> String {
    format!("fnv64:{:016x}", serde::bin::fnv1a64(config.as_bytes()))
}

/// Renders a complete `BENCH_*.json` artifact: the shared header
/// (`schema_version`, `bench`, `config`, `config_digest`, `memory`)
/// followed by the bench-specific `fields` — pre-formatted JSON lines,
/// two-space indented, ending in `\n`, without the surrounding braces.
pub fn bench_json(bench: &str, config: &str, mem: MemoryFootprint, fields: &str) -> String {
    format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"{bench}\",\n  \
         \"config\": \"{config}\",\n  \"config_digest\": \"{}\",\n  \
         \"memory\": {{ \"peak_bytes\": {}, \"bytes_per_edge\": {:.2} }},\n{fields}}}\n",
        config_digest(config),
        mem.peak_bytes,
        mem.bytes_per_edge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_config_sensitive() {
        assert_eq!(config_digest("nodes=1000"), config_digest("nodes=1000"));
        assert_ne!(config_digest("nodes=1000"), config_digest("nodes=1001"));
        let d = config_digest("x");
        assert!(d.starts_with("fnv64:") && d.len() == 6 + 16, "got {d}");
    }

    #[test]
    fn bench_json_carries_the_shared_header() {
        let mem = MemoryFootprint::per_edge(64_000, 16_000);
        let json = bench_json("demo", "nodes=10", mem, "  \"answer\": 42\n");
        assert!(json.starts_with("{\n  \"schema_version\": 2,\n  \"bench\": \"demo\",\n"));
        assert!(json.contains("\"config\": \"nodes=10\""));
        assert!(json.contains(&format!(
            "\"config_digest\": \"{}\"",
            config_digest("nodes=10")
        )));
        assert!(json.contains("\"memory\": { \"peak_bytes\": 64000, \"bytes_per_edge\": 4.00 }"));
        assert!(json.ends_with("  \"answer\": 42\n}\n"));
    }

    #[test]
    fn per_edge_footprint_divides_and_survives_zero_edges() {
        let m = MemoryFootprint::per_edge(48, 0);
        assert_eq!(m.peak_bytes, 48);
        assert_eq!(m.bytes_per_edge, 48.0);
    }
}
