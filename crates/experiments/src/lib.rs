//! # perigee-experiments
//!
//! The reproduction harness: one module per figure of the Perigee paper's
//! evaluation (§5), plus the theory experiments (§3) and our extension
//! studies. The `repro` binary drives everything from the command line;
//! benches and integration tests reuse the same library functions.
//!
//! | Module | Paper result |
//! |--------|--------------|
//! | [`theory`] | Fig. 1 and Theorems 1–2 (metric-embedding stretch) |
//! | [`fig3`] | Fig. 3(a)/(b): delay curves for all seven algorithms |
//! | [`fig4`] | Fig. 4(a)/(b)/(c): validation sweep, mining pools, relay networks |
//! | [`fig5`] | Fig. 5: edge-latency histograms |
//! | [`convergence`] | §5.2 convergence remark |
//! | [`ablation`] | parameter sweeps (exploration, percentile, round size, UCB c) |
//! | [`adversary`] | free-rider starvation, eclipse recovery, churn |
//! | [`deployment`] | incremental deployment (§1.2) |
//! | [`discovery`] | partial peer knowledge via gossiped address books (§6) |
//! | [`bandwidth`] | bandwidth-heterogeneous INV/GETDATA regime (§2.1/§3.3) |
//! | [`dynamics`] | dynamic worlds: steady-state churn, mid-run 1k→10k growth (§6) |
//! | [`faults`] | link faults: burst loss, partitions, brownouts, flaps + gating ablation (§6) |
//! | [`traffic`] | continuous transaction-stream load: per-class λ-curves + blocks-only vs combined ablation (§2.1/§6) |
//! | [`resume`] | checkpoint/resume workflow + strict invariant auditing for long runs |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod adversary;
pub mod bandwidth;
pub mod convergence;
pub mod deployment;
pub mod discovery;
pub mod dynamics;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod resume;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod theory;
pub mod trace;
pub mod traffic;

pub use runner::{build_world, run_algorithm, run_parallel, run_seeds, Algorithm, RunOutput};
pub use scenario::{MinerCliqueSpec, RelaySpec, Scenario};
